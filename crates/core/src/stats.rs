//! Instance and solution statistics — the numbers an operator wants
//! before and after solving (used by the CLI's `info` command and the
//! experiment reports).

use crate::classify::{classify_by_size, strata_by_bottleneck};
use crate::instance::Instance;
use crate::solution::SapSolution;
use crate::units::Ratio;

/// Descriptive statistics of an instance.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceStats {
    /// Number of tasks.
    pub tasks: usize,
    /// Number of edges.
    pub edges: usize,
    /// Minimum / maximum capacity.
    pub capacity_range: (u64, u64),
    /// Minimum / maximum demand.
    pub demand_range: (u64, u64),
    /// Mean span length (edges).
    pub mean_span: f64,
    /// Total weight of all tasks.
    pub total_weight: u64,
    /// `LOAD(J)` — the maximum per-edge demand sum.
    pub max_load: u64,
    /// Maximum per-edge congestion `load / capacity` (can exceed 1: not
    /// all tasks can be scheduled then).
    pub max_congestion: f64,
    /// Task counts per regime at δ = 1/16 and δ′ = ½ (the defaults of the
    /// combined algorithm).
    pub regime_counts: (usize, usize, usize),
    /// Number of non-empty bottleneck strata `J_t`.
    pub strata: usize,
    /// Whether the no-bottleneck assumption holds.
    pub nba: bool,
}

/// Computes [`InstanceStats`].
pub fn instance_stats(instance: &Instance) -> InstanceStats {
    let ids = instance.all_ids();
    let loads = instance.loads(&ids);
    let max_load = loads.iter().copied().max().unwrap_or(0);
    let max_congestion = loads
        .iter()
        .enumerate()
        .map(|(e, &l)| l as f64 / instance.network().capacity(e).max(1) as f64)
        .fold(0.0, f64::max);
    let classes = classify_by_size(instance, Ratio::new(1, 16), Ratio::new(1, 2));
    let demands: Vec<u64> = instance.tasks().iter().map(|t| t.demand).collect();
    let mean_span = if ids.is_empty() {
        0.0
    } else {
        instance.tasks().iter().map(|t| t.span.len()).sum::<usize>() as f64 / ids.len() as f64
    };
    InstanceStats {
        tasks: instance.num_tasks(),
        edges: instance.num_edges(),
        capacity_range: (instance.network().min_capacity(), instance.network().max_capacity()),
        demand_range: (
            demands.iter().copied().min().unwrap_or(0),
            demands.iter().copied().max().unwrap_or(0),
        ),
        mean_span,
        total_weight: instance.weight_sum(),
        max_load,
        max_congestion,
        regime_counts: (classes.small.len(), classes.medium.len(), classes.large.len()),
        strata: strata_by_bottleneck(instance, &ids).len(),
        nba: instance.satisfies_nba(),
    }
}

/// Descriptive statistics of a solution against its instance.
#[derive(Debug, Clone, PartialEq)]
pub struct SolutionStats {
    /// Selected tasks / total tasks.
    pub selected: (usize, usize),
    /// Achieved weight / total weight.
    pub weight: (u64, u64),
    /// Mean capacity utilisation over edges under the solution
    /// (`makespan(e) / c_e`, averaged).
    pub mean_utilization: f64,
    /// Highest single-edge utilisation.
    pub max_utilization: f64,
    /// Total empty area trapped *below* placed tasks (wasted by
    /// fragmentation; 0 for a grounded solution on one edge).
    pub max_makespan: u64,
}

/// Computes [`SolutionStats`]. The solution must be feasible.
pub fn solution_stats(instance: &Instance, solution: &SapSolution) -> SolutionStats {
    debug_assert!(solution.validate(instance).is_ok());
    let ms = solution.makespans(instance);
    let utils: Vec<f64> = ms
        .iter()
        .enumerate()
        .map(|(e, &m)| m as f64 / instance.network().capacity(e).max(1) as f64)
        .collect();
    SolutionStats {
        selected: (solution.len(), instance.num_tasks()),
        weight: (solution.weight(instance), instance.weight_sum()),
        mean_utilization: utils.iter().sum::<f64>() / utils.len().max(1) as f64,
        max_utilization: utils.iter().copied().fold(0.0, f64::max),
        max_makespan: solution.max_makespan(instance),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::PathNetwork;
    use crate::task::Task;

    fn instance() -> Instance {
        let net = PathNetwork::new(vec![8, 16]).unwrap();
        let tasks = vec![
            Task::of(0, 2, 4, 5), // large at δ'=½ (b=8, d=4: 4 ≤ 4 → medium boundary)
            Task::of(1, 2, 1, 3), // small (b=16, d=1 ≤ 1)
            Task::of(0, 1, 8, 2), // large (d = b)
        ];
        Instance::new(net, tasks).unwrap()
    }

    #[test]
    fn instance_stats_basics() {
        let s = instance_stats(&instance());
        assert_eq!(s.tasks, 3);
        assert_eq!(s.edges, 2);
        assert_eq!(s.capacity_range, (8, 16));
        assert_eq!(s.demand_range, (1, 8));
        assert_eq!(s.total_weight, 10);
        assert_eq!(s.max_load, 12); // edge 0: 4 + 8
        assert!((s.max_congestion - 1.5).abs() < 1e-9);
        let (small, medium, large) = s.regime_counts;
        assert_eq!(small + medium + large, 3);
        assert_eq!(small, 1);
        // max demand 8 = min capacity 8 ⇒ NBA holds (boundary inclusive).
        assert!(s.nba);
    }

    #[test]
    fn solution_stats_basics() {
        let inst = instance();
        let sol = SapSolution::from_pairs([(1, 0), (0, 1)]);
        sol.validate(&inst).unwrap();
        let s = solution_stats(&inst, &sol);
        assert_eq!(s.selected, (2, 3));
        assert_eq!(s.weight, (8, 10));
        assert_eq!(s.max_makespan, 5);
        // edge 0: makespan 5 / 8; edge 1: 5 / 16.
        assert!((s.max_utilization - 5.0 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn empty_instance_stats() {
        let net = PathNetwork::uniform(2, 4).unwrap();
        let inst = Instance::new(net, vec![]).unwrap();
        let s = instance_stats(&inst);
        assert_eq!(s.tasks, 0);
        assert_eq!(s.max_load, 0);
        assert_eq!(s.mean_span, 0.0);
        let sol = solution_stats(&inst, &SapSolution::empty());
        assert_eq!(sol.selected, (0, 0));
        assert_eq!(sol.mean_utilization, 0.0);
    }
}

//! Error types.

use std::fmt;

use crate::units::{Capacity, EdgeId, TaskId};

/// Result alias used throughout the workspace.
pub type SapResult<T> = Result<T, SapError>;

/// Errors raised by instance constructors and solution validators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SapError {
    /// The path network has no edges.
    EmptyNetwork,
    /// An edge capacity exceeds [`crate::units::MAX_CAPACITY`].
    CapacityTooLarge {
        /// Offending edge.
        edge: EdgeId,
        /// Its capacity.
        capacity: Capacity,
    },
    /// A task span is empty or out of the network's range.
    InvalidSpan {
        /// Offending task.
        task: TaskId,
    },
    /// A task has zero demand.
    ZeroDemand {
        /// Offending task.
        task: TaskId,
    },
    /// A task's demand exceeds its bottleneck capacity, so it can never be
    /// scheduled. (Constructors accept such tasks only when explicitly
    /// requested; validators treat scheduling them as infeasible.)
    DemandExceedsBottleneck {
        /// Offending task.
        task: TaskId,
    },
    /// A solution references a task id outside the instance.
    UnknownTask {
        /// Offending task id.
        task: TaskId,
    },
    /// A solution selects the same task twice.
    DuplicateTask {
        /// Offending task id.
        task: TaskId,
    },
    /// A UFPP solution overflows the capacity of an edge.
    LoadExceedsCapacity {
        /// Offending edge.
        edge: EdgeId,
        /// Total demand of selected tasks using the edge.
        load: u64,
        /// Capacity of the edge.
        capacity: Capacity,
    },
    /// A SAP placement pokes above the capacity of an edge on its path.
    PlacementAboveCapacity {
        /// Offending task id.
        task: TaskId,
        /// Edge where `h(j) + d_j > c_e`.
        edge: EdgeId,
    },
    /// Two SAP placements overlap as rectangles.
    OverlappingPlacements {
        /// First offending task.
        a: TaskId,
        /// Second offending task.
        b: TaskId,
    },
    /// A numeric overflow would occur (instance too large for internal
    /// scaling).
    Overflow,
    /// An algorithm-specific parameter is out of its documented range.
    InvalidParameter(&'static str),
    /// A cooperative [`crate::budget::Budget`] tripped (work-unit limit,
    /// deadline, or cancellation) before the algorithm finished. The
    /// caller should fall back to a cheaper algorithm.
    BudgetExhausted,
}

impl fmt::Display for SapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SapError::EmptyNetwork => write!(f, "path network must have at least one edge"),
            SapError::CapacityTooLarge { edge, capacity } => {
                write!(f, "capacity {capacity} of edge {edge} exceeds the supported maximum")
            }
            SapError::InvalidSpan { task } => write!(f, "task {task} has an invalid span"),
            SapError::ZeroDemand { task } => write!(f, "task {task} has zero demand"),
            SapError::DemandExceedsBottleneck { task } => {
                write!(f, "task {task} demands more than its bottleneck capacity")
            }
            SapError::UnknownTask { task } => write!(f, "unknown task id {task}"),
            SapError::DuplicateTask { task } => write!(f, "task {task} selected more than once"),
            SapError::LoadExceedsCapacity { edge, load, capacity } => {
                write!(f, "load {load} exceeds capacity {capacity} on edge {edge}")
            }
            SapError::PlacementAboveCapacity { task, edge } => {
                write!(f, "task {task} placed above the capacity of edge {edge}")
            }
            SapError::OverlappingPlacements { a, b } => {
                write!(f, "tasks {a} and {b} overlap as rectangles")
            }
            SapError::Overflow => write!(f, "numeric overflow"),
            SapError::InvalidParameter(p) => write!(f, "invalid parameter: {p}"),
            SapError::BudgetExhausted => write!(f, "budget exhausted before completion"),
        }
    }
}

impl std::error::Error for SapError {}

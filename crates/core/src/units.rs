//! Scalar unit types.
//!
//! All quantities in this workspace are **exact unsigned integers**. This is
//! without loss of generality for the paper's algorithms: by Observation 11
//! (the "gravity" argument) there is always an optimal SAP solution in which
//! every height is a sum of demands, so integer demands imply integer
//! heights. Exact arithmetic lets every validator be a proof rather than a
//! tolerance check.

/// Edge capacity `c_e`.
pub type Capacity = u64;

/// Task demand `d_j` (the height of the task's rectangle).
pub type Demand = u64;

/// Task weight `w_j` (the profit of selecting the task).
pub type Weight = u64;

/// A height `h(j)` assigned to a selected task (the bottom ordinate of its
/// rectangle).
pub type Height = u64;

/// Index of a task within an [`crate::Instance`].
pub type TaskId = usize;

/// Index of an edge of the path. A path with `m` edges has edges
/// `0 .. m` connecting vertices `0 ..= m`.
pub type EdgeId = usize;

/// Index of a vertex of the path.
pub type Vertex = usize;

/// Upper bound used by algorithms that scale demands/capacities internally
/// (e.g. the medium-task algorithm multiplies by `2^q`). Instances whose
/// capacities exceed this bound are rejected at construction so that no
/// intermediate computation can overflow `u64`.
pub const MAX_CAPACITY: Capacity = 1 << 48;

/// An exact non-negative rational, used for the paper's parameters
/// (δ, β, ε) so that classifications like "δ-small" are decided with
/// integer arithmetic only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ratio {
    /// Numerator.
    pub num: u64,
    /// Denominator (non-zero).
    pub den: u64,
}

impl Ratio {
    /// Creates `num / den`.
    ///
    /// # Panics
    ///
    /// Panics when `den == 0`.
    #[must_use]
    pub const fn new(num: u64, den: u64) -> Self {
        assert!(den != 0, "Ratio denominator must be non-zero");
        Ratio { num, den }
    }

    /// `1 / k`.
    #[must_use]
    pub const fn recip(k: u64) -> Self {
        Ratio::new(1, k)
    }

    /// True when `value ≤ self · base`, exactly (u128 cross-multiplication).
    #[inline]
    pub fn le_scaled(&self, value: u64, base: u64) -> bool {
        (value as u128) * (self.den as u128) <= (self.num as u128) * (base as u128)
    }

    /// `⌊self · base⌋`.
    #[inline]
    pub fn floor_mul(&self, base: u64) -> u64 {
        ((self.num as u128 * base as u128) / self.den as u128) as u64
    }

    /// `⌈self · base⌉`.
    #[inline]
    pub fn ceil_mul(&self, base: u64) -> u64 {
        let prod = self.num as u128 * base as u128;
        prod.div_ceil(self.den as u128) as u64
    }

    /// Value as `f64` (for reporting only; never used in feasibility
    /// decisions).
    #[inline]
    pub fn as_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Exact comparison `self ≤ other`.
    #[inline]
    pub fn le(&self, other: Ratio) -> bool {
        (self.num as u128) * (other.den as u128) <= (other.num as u128) * (self.den as u128)
    }

    /// Exact strict comparison `self < other`.
    #[inline]
    pub fn lt(&self, other: Ratio) -> bool {
        (self.num as u128) * (other.den as u128) < (other.num as u128) * (self.den as u128)
    }
}

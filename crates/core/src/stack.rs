//! Lifting and stacking of strip solutions (Algorithm Strip-Pack, Fig. 4).
//!
//! Algorithm Strip-Pack computes, for each bottleneck stratum `J_t`, a
//! `2^{t−1}`-packable solution, lifts it by `2^{t−1}` and takes the union.
//! Feasibility of the union follows because the lifted solution for `J_t`
//! lives in the vertical strip `[2^{t−1}, 2^t)` and the strips are disjoint.
//! These helpers implement the lift and the union; the caller establishes
//! (and the validator checks) the strip discipline.

use crate::solution::{Placement, SapSolution};
use crate::units::Height;

/// Returns a copy of `solution` with every height increased by `dh`.
#[must_use]
pub fn lift(solution: &SapSolution, dh: Height) -> SapSolution {
    SapSolution::new(
        solution
            .placements
            .iter()
            .map(|p| Placement { task: p.task, height: p.height + dh })
            .collect(),
    )
}

/// Unions several solutions (assumed to select disjoint task sets) into
/// one. No feasibility is implied — run the validator on the result.
#[must_use]
pub fn stack(parts: &[SapSolution]) -> SapSolution {
    let mut placements = Vec::with_capacity(parts.iter().map(|s| s.len()).sum());
    for s in parts {
        placements.extend_from_slice(&s.placements);
    }
    SapSolution::new(placements)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;
    use crate::network::PathNetwork;
    use crate::task::Task;

    #[test]
    fn lift_shifts_heights() {
        let sol = SapSolution::from_pairs([(0, 0), (1, 3)]);
        let lifted = lift(&sol, 4);
        assert_eq!(lifted.height_of(0), Some(4));
        assert_eq!(lifted.height_of(1), Some(7));
    }

    #[test]
    fn stacked_strips_validate() {
        // Two strata on one path: capacities 8 everywhere.
        // Stratum A (strip [0,2)): tasks of demand 1; stratum B (strip
        // [2,6)): tasks of demand 2 lifted by 2.
        let net = PathNetwork::uniform(3, 8).unwrap();
        let tasks = vec![
            Task::of(0, 3, 1, 1), // A
            Task::of(0, 2, 1, 1), // A
            Task::of(0, 3, 2, 1), // B
            Task::of(1, 3, 2, 1), // B
        ];
        let inst = Instance::new(net, tasks).unwrap();
        let a = SapSolution::from_pairs([(0, 0), (1, 1)]);
        let b = SapSolution::from_pairs([(2, 0), (3, 2)]);
        let combined = stack(&[a, lift(&b, 2)]);
        combined.validate(&inst).unwrap();
        assert_eq!(combined.len(), 4);
        assert_eq!(combined.height_of(2), Some(2));
        assert_eq!(combined.height_of(3), Some(4));
    }

    #[test]
    fn stack_of_nothing_is_empty() {
        assert!(stack(&[]).is_empty());
        assert!(stack(&[SapSolution::empty(), SapSolution::empty()]).is_empty());
    }
}

//! Capacity clipping (Observation 2, Fig. 3).
//!
//! When solving for a task subset whose bottlenecks all lie in a band
//! `[lo, hi)`, Observation 2 lets us clamp every capacity to `hi`: any
//! feasible SAP solution for these tasks has makespan at most
//! `max_j b(j) < hi` on every edge, so the clamp loses nothing; and since
//! capacities only decrease, solutions of the clipped instance remain
//! feasible in the original. This reproduces Fig. 3.

use crate::error::SapResult;
use crate::instance::Instance;
use crate::units::{Capacity, TaskId};

/// Builds the clipped sub-instance for `ids`: same path, capacities
/// clamped to `hi`, tasks restricted to `ids`. Returns the sub-instance
/// and the id map back to the original instance.
///
/// # Panics
///
/// Debug-panics when a task in `ids` has bottleneck outside `[lo, hi)` —
/// callers are expected to pass a bottleneck-banded subset (e.g. a stratum
/// `J_t` or class `J^{k,ℓ}`).
pub fn clip_to_band(
    instance: &Instance,
    ids: &[TaskId],
    lo: Capacity,
    hi: Capacity,
) -> SapResult<(Instance, Vec<TaskId>)> {
    debug_assert!(ids.iter().all(|&j| {
        let b = instance.bottleneck(j);
        lo <= b && b < hi
    }));
    let clipped = instance.network().map_capacities(|c| c.min(hi))?;
    let tasks: Vec<_> = ids.iter().map(|&j| *instance.task(j)).collect();
    let sub = Instance::new(clipped, tasks)?;
    Ok((sub, ids.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::PathNetwork;
    use crate::solution::SapSolution;
    use crate::task::Task;

    #[test]
    fn clipping_preserves_feasibility_both_ways() {
        let net = PathNetwork::new(vec![8, 20, 9]).unwrap();
        let tasks = vec![
            Task::of(0, 3, 4, 3), // b = 8
            Task::of(1, 3, 5, 2), // b = 9
            Task::of(1, 2, 6, 1), // b = 20 — outside band [8, 16)
        ];
        let inst = Instance::new(net, tasks).unwrap();

        let (sub, map) = clip_to_band(&inst, &[0, 1], 8, 16).unwrap();
        assert_eq!(map, vec![0, 1]);
        assert_eq!(sub.network().capacities(), &[8, 16, 9]);

        // A solution of the clipped instance is feasible in the original.
        let sol = SapSolution::from_pairs([(0, 0), (1, 4)]);
        sol.validate(&sub).unwrap();
        let orig = SapSolution::from_pairs(
            sol.placements.iter().map(|p| (map[p.task], p.height)),
        );
        orig.validate(&inst).unwrap();
    }

    #[test]
    fn clipping_bounds_bottlenecks() {
        let net = PathNetwork::new(vec![100, 40]).unwrap();
        let inst = Instance::new(net, vec![Task::of(0, 1, 10, 1)]).unwrap();
        let (sub, _) = clip_to_band(&inst, &[0], 64, 128).unwrap();
        // Capacities clamped to < 128, and unused low edges untouched.
        assert_eq!(sub.network().capacities(), &[100, 40]);
        assert_eq!(sub.bottleneck(0), 100);
    }
}

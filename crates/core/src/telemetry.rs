//! Zero-dependency observability: a deterministic recorder of nested
//! spans, named counters, monotonic gauges and log2 histograms.
//!
//! The portfolio driver is a best-of-three race whose arms each burn work
//! in very different places (simplex pivots, DP rows, rectangle sweeps).
//! A [`Recorder`] collects *where* that work went without perturbing the
//! race: the [`Telemetry`] handle threaded through the solvers (it rides
//! inside [`crate::budget::Budget`]) is an `Option<Arc<..>>` — the
//! default handle is **off** and every operation returns after one null
//! check, with no allocation and no locking on the hot path.
//!
//! ## Determinism contract
//!
//! The JSON export ([`Recorder::to_json_string`]) follows the same rules
//! as [`crate::budget::SolveReport`]: no wall-clock fields, children and
//! metric names sorted, counters accumulated with commutative updates
//! (atomic adds / maxes). Two runs of the same instance under the same
//! budget therefore export **byte-identical** documents regardless of
//! thread interleaving. Wall-clock timings exist but are opt-in
//! ([`Recorder::with_timings`]) and clearly marked (`busy_ns`), so a
//! deterministic export never contains them.
//!
//! ## Adding a counter
//!
//! Pick the node whose phase you are in (usually
//! `budget.telemetry()`), and call [`Telemetry::count`] /
//! [`Telemetry::gauge_max`] / [`Telemetry::observe`] with a `'static`
//! identifier-like name (names are emitted unescaped). Only record
//! values that are functions of the input — never of thread scheduling —
//! or the determinism gate in `scripts/ci.sh` will catch the drift.
//! Register the name in the DESIGN.md §9 counter registry (the `t2`
//! lint rejects counter names that no test or exported doc mentions).
//!
//! Per-solve recorders are not the only producers: long-lived engines
//! (the serve engine, its admission controller) accumulate plain `u64`
//! stats across requests and replay them onto a fresh recorder at
//! shutdown via `count` — cumulative families like `serve.*` follow the
//! same static-name and determinism rules as per-solve counters, with
//! "dynamic" dimensions (arm names, tenants) folded onto fixed names
//! (`serve.winner.*`, `serve.tenant.*`) rather than interpolated.

use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use crate::budget::CheckpointClass;
use crate::obs::Histogram;

/// Schema version emitted as the leading `"v"` field of the telemetry
/// JSON export.
pub const TELEMETRY_SCHEMA_VERSION: u64 = 1;

/// Mutex lock that shrugs off poisoning: telemetry must keep working
/// while the driver unwinds a panicked arm (partial metrics are exactly
/// what the report needs then), and every protected value stays
/// internally consistent under a mid-update unwind (plain vecs of PODs).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// One node of the phase tree: entry count, per-class work units, and
/// the node's own counters / gauges / histograms / children.
#[derive(Debug)]
struct SpanNode {
    name: &'static str,
    /// Wall-clock collection on/off, inherited from the [`Recorder`].
    timings: bool,
    entries: AtomicU64,
    busy_nanos: AtomicU64,
    work: [AtomicU64; CheckpointClass::ALL.len()],
    counters: Mutex<Vec<(&'static str, u64)>>,
    gauges: Mutex<Vec<(&'static str, u64)>>,
    hists: Mutex<Vec<(&'static str, Histogram)>>,
    children: Mutex<Vec<Arc<SpanNode>>>,
}

impl SpanNode {
    fn new(name: &'static str, timings: bool) -> SpanNode {
        SpanNode {
            name,
            timings,
            entries: AtomicU64::new(0),
            busy_nanos: AtomicU64::new(0),
            work: std::array::from_fn(|_| AtomicU64::new(0)),
            counters: Mutex::new(Vec::new()),
            gauges: Mutex::new(Vec::new()),
            hists: Mutex::new(Vec::new()),
            children: Mutex::new(Vec::new()),
        }
    }

    /// Find-or-create the child named `name` (one node per distinct name:
    /// concurrent spans of the same phase share a node, which is what
    /// keeps the export independent of interleaving).
    fn child(self: &Arc<SpanNode>, name: &'static str) -> Arc<SpanNode> {
        let mut kids = lock(&self.children);
        if let Some(k) = kids.iter().find(|k| k.name == name) {
            return Arc::clone(k);
        }
        let node = Arc::new(SpanNode::new(name, self.timings));
        kids.push(Arc::clone(&node));
        node
    }

    fn work_units(&self, class: CheckpointClass) -> u64 {
        self.work.get(class.index()).map_or(0, |w| w.load(Ordering::Relaxed))
    }

    fn work_total(&self) -> u64 {
        self.work.iter().fold(0u64, |acc, w| acc.saturating_add(w.load(Ordering::Relaxed)))
    }

    fn sorted_children(&self) -> Vec<Arc<SpanNode>> {
        let mut kids: Vec<Arc<SpanNode>> = lock(&self.children).clone();
        kids.sort_by_key(|k| k.name);
        kids
    }
}

/// Adds `n` to the named slot of a `(name, value)` metric vec.
fn slot_add(slot: &Mutex<Vec<(&'static str, u64)>>, name: &'static str, n: u64) {
    let mut v = lock(slot);
    match v.iter_mut().find(|(k, _)| *k == name) {
        Some((_, val)) => *val = val.saturating_add(n),
        None => v.push((name, n)),
    }
}

/// Raises the named slot to at least `n` (monotonic gauge).
fn slot_max(slot: &Mutex<Vec<(&'static str, u64)>>, name: &'static str, n: u64) {
    let mut v = lock(slot);
    match v.iter_mut().find(|(k, _)| *k == name) {
        Some((_, val)) => *val = (*val).max(n),
        None => v.push((name, n)),
    }
}

/// Sorted copy of a metric vec, for the deterministic exporters.
fn sorted_slots(slot: &Mutex<Vec<(&'static str, u64)>>) -> Vec<(&'static str, u64)> {
    let mut v = lock(slot).clone();
    v.sort_by_key(|&(k, _)| k);
    v
}

/// A cheap, cloneable handle to one node of a [`Recorder`]'s phase tree
/// — or the **off** handle ([`Telemetry::off`], also the `Default`),
/// whose every method is a null-check no-op.
///
/// Handles are explicit-parent: nesting is expressed by carrying the
/// child handle (usually inside a child [`crate::budget::Budget`])
/// rather than through thread-local state, so parallel arms can never
/// mis-attribute work.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    node: Option<Arc<SpanNode>>,
}

impl Telemetry {
    /// The disabled handle: all operations are no-ops, all queries
    /// return zero / `None`.
    pub fn off() -> Telemetry {
        Telemetry { node: None }
    }

    /// True when this handle records into a live [`Recorder`].
    pub fn is_enabled(&self) -> bool {
        self.node.is_some()
    }

    /// Handle to the child phase `name`, created on first use. Does not
    /// count an entry — use [`Telemetry::span`] for that.
    pub fn child(&self, name: &'static str) -> Telemetry {
        Telemetry { node: self.node.as_ref().map(|n| n.child(name)) }
    }

    /// Enters the child phase `name`: bumps its entry count and returns
    /// an RAII [`Span`] guard that (with timings enabled) adds the
    /// elapsed wall-clock to the phase on drop.
    pub fn span(&self, name: &'static str) -> Span {
        self.child(name).enter()
    }

    /// Enters *this* phase (see [`Telemetry::span`]): bumps the entry
    /// count and returns the RAII guard.
    pub fn enter(&self) -> Span {
        let mut started = None;
        if let Some(node) = &self.node {
            node.entries.fetch_add(1, Ordering::Relaxed);
            if node.timings {
                // lint:allow(n1) — guarded by the `timings` opt-in:
                // durations are recorded only when the caller asked for
                // wall-clock data and accepts the nondeterminism.
                started = Some(Instant::now());
            }
        }
        Span { tele: self.clone(), started }
    }

    /// Adds `n` to the counter `name` on this phase.
    pub fn count(&self, name: &'static str, n: u64) {
        if let Some(node) = &self.node {
            slot_add(&node.counters, name, n);
        }
    }

    /// Raises the monotonic gauge `name` to at least `v`.
    pub fn gauge_max(&self, name: &'static str, v: u64) {
        if let Some(node) = &self.node {
            slot_max(&node.gauges, name, v);
        }
    }

    /// Records `v` into the log2 histogram `name` (bucket 0 = zero,
    /// bucket k = `[2^(k-1), 2^k)`).
    pub fn observe(&self, name: &'static str, v: u64) {
        let Some(node) = &self.node else { return };
        let mut hs = lock(&node.hists);
        if !hs.iter().any(|(k, _)| *k == name) {
            hs.push((name, Histogram::new()));
        }
        if let Some((_, h)) = hs.iter_mut().find(|(k, _)| *k == name) {
            h.record(v);
        }
    }

    /// Attributes `units` work units of `class` to this phase. This is
    /// what [`crate::budget::Budget::tick`] calls; the per-phase sums
    /// reconcile with the budget meter (the conservation test pins it).
    pub fn work(&self, class: CheckpointClass, units: u64) {
        if let Some(node) = &self.node {
            if let Some(w) = node.work.get(class.index()) {
                w.fetch_add(units, Ordering::Relaxed);
            }
        }
    }

    /// Times this phase entered (via [`Telemetry::enter`] /
    /// [`Telemetry::span`]); 0 when off.
    pub fn entries(&self) -> u64 {
        self.node.as_ref().map_or(0, |n| n.entries.load(Ordering::Relaxed))
    }

    /// Work units of `class` attributed to this phase; 0 when off.
    pub fn work_units(&self, class: CheckpointClass) -> u64 {
        self.node.as_ref().map_or(0, |n| n.work_units(class))
    }

    /// Total work units attributed to this phase (its own, children not
    /// included); 0 when off.
    pub fn work_total(&self) -> u64 {
        self.node.as_ref().map_or(0, |n| n.work_total())
    }

    /// Current value of the counter `name`; 0 when absent or off.
    pub fn counter(&self, name: &str) -> u64 {
        let Some(node) = &self.node else { return 0 };
        lock(&node.counters).iter().find(|(k, _)| *k == name).map_or(0, |&(_, v)| v)
    }

    /// Current value of the gauge `name`; 0 when absent or off.
    pub fn gauge(&self, name: &str) -> u64 {
        let Some(node) = &self.node else { return 0 };
        lock(&node.gauges).iter().find(|(k, _)| *k == name).map_or(0, |&(_, v)| v)
    }

    /// Handle to the existing child phase `name`, without creating it.
    pub fn get_child(&self, name: &str) -> Option<Telemetry> {
        let node = self.node.as_ref()?;
        let kids = lock(&node.children);
        kids.iter()
            .find(|k| k.name == name)
            .map(|k| Telemetry { node: Some(Arc::clone(k)) })
    }

    /// Owned, sorted snapshot of this phase's subtree (see
    /// [`Recorder::snapshot`]); `None` when the handle is off.
    pub fn snapshot_node(&self) -> Option<SpanData> {
        self.node.as_ref().map(|n| node_snapshot(n))
    }
}

/// RAII guard for an entered phase. Derefs to the phase's [`Telemetry`]
/// handle so nested metrics read naturally
/// (`let sp = tele.span("lp.solve"); sp.count("solves", 1);`).
#[derive(Debug)]
pub struct Span {
    tele: Telemetry,
    started: Option<Instant>,
}

impl Span {
    /// An owned handle to this span's phase, e.g. for attaching to a
    /// child [`crate::budget::Budget`] that outlives the guard.
    pub fn telemetry(&self) -> Telemetry {
        self.tele.clone()
    }
}

impl Deref for Span {
    type Target = Telemetry;

    fn deref(&self) -> &Telemetry {
        &self.tele
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let (Some(t0), Some(node)) = (self.started, self.tele.node.as_ref()) {
            let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            node.busy_nanos.fetch_add(ns, Ordering::Relaxed);
        }
    }
}

/// Owns the root of a phase tree and renders the exports.
///
/// Typical use: create a recorder, attach its [`Recorder::handle`] to a
/// [`crate::budget::Budget`] via
/// [`with_telemetry`](crate::budget::Budget::with_telemetry), run the
/// solve, then export.
#[derive(Debug)]
pub struct Recorder {
    root: Arc<SpanNode>,
}

impl Default for Recorder {
    fn default() -> Recorder {
        Recorder::new()
    }
}

impl Recorder {
    /// A recorder with wall-clock timings **off** (the deterministic
    /// default).
    pub fn new() -> Recorder {
        Recorder { root: Arc::new(SpanNode::new("root", false)) }
    }

    /// A recorder that additionally accumulates per-span wall-clock time
    /// (`busy_ns` in the JSON export, `busy_ms` in the tree). Timed
    /// exports are **not** byte-reproducible across runs.
    pub fn with_timings() -> Recorder {
        Recorder { root: Arc::new(SpanNode::new("root", true)) }
    }

    /// The handle to the root phase.
    pub fn handle(&self) -> Telemetry {
        Telemetry { node: Some(Arc::clone(&self.root)) }
    }

    /// Deterministic single-line JSON export (see the module docs for
    /// the determinism contract). Layout:
    ///
    /// ```json
    /// {"v":1,"spans":{"name":"root","n":0,"work":{..},"counters":{..},
    ///  "gauges":{..},"hist":{"k":[[bucket,count],..]},"children":[..]}}
    /// ```
    ///
    /// Empty sections are omitted; `busy_ns` appears only under
    /// [`Recorder::with_timings`].
    pub fn to_json_string(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"v\":");
        push_u64(&mut out, TELEMETRY_SCHEMA_VERSION);
        out.push_str(",\"spans\":");
        node_json(&self.root, &mut out);
        out.push('}');
        out
    }

    /// Human-readable phase-tree summary, two-space indented, one line
    /// per phase:
    ///
    /// ```text
    /// root  n=0  work=241 (driver=1 ...)
    ///   small  n=1  work=120 (lp_pivot=113 driver=7)  lp.solves=4
    /// ```
    pub fn to_tree_string(&self) -> String {
        let mut out = String::with_capacity(256);
        node_tree(&self.root, 0, &mut out);
        out
    }

    /// An owned, sorted snapshot of the whole phase tree — the handoff
    /// format for cumulative aggregation ([`crate::obs`]): a long-lived
    /// engine snapshots each finished per-request recorder and merges
    /// the snapshots into an [`crate::obs::ObsNode`] profile.
    pub fn snapshot(&self) -> SpanData {
        node_snapshot(&self.root)
    }
}

/// An owned snapshot of one span node and its subtree, with children
/// and metric names sorted — the same deterministic order as the JSON
/// export, so consumers (aggregation, trace export) inherit the
/// byte-reproducibility contract. Produced by [`Recorder::snapshot`] /
/// [`Telemetry::snapshot_node`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanData {
    /// Phase name.
    pub name: &'static str,
    /// Times the phase was entered.
    pub entries: u64,
    /// Accumulated wall-clock nanoseconds (0 unless the recorder opted
    /// into timings).
    pub busy_ns: u64,
    /// Work units by [`CheckpointClass`] index.
    pub work: [u64; CheckpointClass::ALL.len()],
    /// Counters, sorted by name.
    pub counters: Vec<(&'static str, u64)>,
    /// Monotonic gauges, sorted by name.
    pub gauges: Vec<(&'static str, u64)>,
    /// Log2 histograms, sorted by name.
    pub hists: Vec<(&'static str, Histogram)>,
    /// Child snapshots, sorted by name.
    pub children: Vec<SpanData>,
}

impl SpanData {
    /// Total work units on this node (children excluded).
    pub fn work_total(&self) -> u64 {
        self.work.iter().fold(0u64, |acc, &w| acc.saturating_add(w))
    }

    /// Child snapshot by name.
    pub fn child(&self, name: &str) -> Option<&SpanData> {
        self.children.iter().find(|c| c.name == name)
    }
}

fn node_snapshot(node: &SpanNode) -> SpanData {
    let hists = {
        let mut hs: Vec<(&'static str, Histogram)> = lock(&node.hists).clone();
        hs.sort_by_key(|&(k, _)| k);
        hs
    };
    SpanData {
        name: node.name,
        entries: node.entries.load(Ordering::Relaxed),
        busy_ns: node.busy_nanos.load(Ordering::Relaxed),
        work: std::array::from_fn(|i| {
            node.work.get(i).map_or(0, |w| w.load(Ordering::Relaxed))
        }),
        counters: sorted_slots(&node.counters),
        gauges: sorted_slots(&node.gauges),
        hists,
        children: node.sorted_children().iter().map(|k| node_snapshot(k)).collect(),
    }
}

/// Writes a `u64` without going through `format!` (hot-ish path, and it
/// keeps the exporters allocation-light).
fn push_u64(out: &mut String, v: u64) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    let mut v = v;
    loop {
        i -= 1;
        if let Some(b) = buf.get_mut(i) {
            *b = b'0' + (v % 10) as u8;
        }
        v /= 10;
        if v == 0 || i == 0 {
            break;
        }
    }
    out.push_str(std::str::from_utf8(buf.get(i..).unwrap_or_default()).unwrap_or_default());
}

fn node_json(node: &SpanNode, out: &mut String) {
    out.push_str("{\"name\":\"");
    out.push_str(node.name);
    out.push_str("\",\"n\":");
    push_u64(out, node.entries.load(Ordering::Relaxed));
    if node.timings {
        out.push_str(",\"busy_ns\":");
        push_u64(out, node.busy_nanos.load(Ordering::Relaxed));
    }
    if node.work_total() > 0 {
        out.push_str(",\"work\":{");
        let mut first = true;
        for class in CheckpointClass::ALL {
            let v = node.work_units(class);
            if v == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push('"');
            out.push_str(class.as_str());
            out.push_str("\":");
            push_u64(out, v);
        }
        out.push('}');
    }
    for (key, slot) in [("counters", &node.counters), ("gauges", &node.gauges)] {
        let entries = sorted_slots(slot);
        if entries.is_empty() {
            continue;
        }
        out.push_str(",\"");
        out.push_str(key);
        out.push_str("\":{");
        for (i, (k, v)) in entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(k);
            out.push_str("\":");
            push_u64(out, *v);
        }
        out.push('}');
    }
    let hists = {
        let mut hs: Vec<(&'static str, Histogram)> = lock(&node.hists).clone();
        hs.sort_by_key(|&(k, _)| k);
        hs
    };
    if !hists.is_empty() {
        out.push_str(",\"hist\":{");
        for (i, (k, h)) in hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(k);
            out.push_str("\":[");
            let mut first = true;
            for (bucket, count) in h.entries() {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push('[');
                push_u64(out, bucket as u64);
                out.push(',');
                push_u64(out, count);
                out.push(']');
            }
            out.push(']');
        }
        out.push('}');
    }
    let kids = node.sorted_children();
    if !kids.is_empty() {
        out.push_str(",\"children\":[");
        for (i, kid) in kids.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            node_json(kid, out);
        }
        out.push(']');
    }
    out.push('}');
}

fn node_tree(node: &SpanNode, depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    out.push_str(node.name);
    out.push_str("  n=");
    push_u64(out, node.entries.load(Ordering::Relaxed));
    out.push_str("  work=");
    push_u64(out, node.work_total());
    if node.work_total() > 0 {
        out.push_str(" (");
        let mut first = true;
        for class in CheckpointClass::ALL {
            let v = node.work_units(class);
            if v == 0 {
                continue;
            }
            if !first {
                out.push(' ');
            }
            first = false;
            out.push_str(class.as_str());
            out.push('=');
            push_u64(out, v);
        }
        out.push(')');
    }
    if node.timings {
        out.push_str("  busy_ms=");
        push_u64(out, node.busy_nanos.load(Ordering::Relaxed) / 1_000_000);
    }
    for (k, v) in sorted_slots(&node.counters) {
        out.push_str("  ");
        out.push_str(k);
        out.push('=');
        push_u64(out, v);
    }
    for (k, v) in sorted_slots(&node.gauges) {
        out.push_str("  max:");
        out.push_str(k);
        out.push('=');
        push_u64(out, v);
    }
    {
        let hs = lock(&node.hists);
        let mut names: Vec<(&'static str, u64)> =
            hs.iter().map(|(k, h)| (*k, h.total())).collect();
        drop(hs);
        names.sort_by_key(|&(k, _)| k);
        for (k, n) in names {
            out.push_str("  ");
            out.push_str(k);
            out.push('~');
            push_u64(out, n);
        }
    }
    out.push('\n');
    for kid in node.sorted_children() {
        node_tree(&kid, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_handle_is_a_noop() {
        let t = Telemetry::off();
        assert!(!t.is_enabled());
        t.count("x", 5);
        t.gauge_max("g", 9);
        t.observe("h", 3);
        t.work(CheckpointClass::DpRow, 7);
        let sp = t.span("phase");
        sp.count("y", 1);
        drop(sp);
        assert_eq!(t.counter("x"), 0);
        assert_eq!(t.entries(), 0);
        assert_eq!(t.work_total(), 0);
        assert!(t.get_child("phase").is_none());
        assert!(Telemetry::default().node.is_none(), "Default must be the off handle");
    }

    #[test]
    fn counters_gauges_and_work_accumulate() {
        let rec = Recorder::new();
        let t = rec.handle();
        t.count("a", 2);
        t.count("a", 3);
        t.gauge_max("g", 4);
        t.gauge_max("g", 2);
        t.work(CheckpointClass::LpPivot, 10);
        t.work(CheckpointClass::Driver, 1);
        assert_eq!(t.counter("a"), 5);
        assert_eq!(t.gauge("g"), 4);
        assert_eq!(t.work_units(CheckpointClass::LpPivot), 10);
        assert_eq!(t.work_total(), 11);
    }

    #[test]
    fn log2_buckets() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(255), 8);
        assert_eq!(Histogram::bucket_of(256), 9);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        let rec = Recorder::new();
        let t = rec.handle();
        for v in [0, 1, 2, 3, 8] {
            t.observe("h", v);
        }
        let json = rec.to_json_string();
        assert!(json.contains("\"hist\":{\"h\":[[0,1],[1,1],[2,2],[4,1]]}"), "{json}");
    }

    #[test]
    fn spans_nest_and_share_nodes_by_name() {
        let rec = Recorder::new();
        let t = rec.handle();
        {
            let arm = t.span("arm");
            let _inner = arm.span("lp");
            let _inner2 = arm.span("lp");
        }
        let arm = t.get_child("arm").expect("created");
        assert_eq!(arm.entries(), 1);
        assert_eq!(arm.get_child("lp").expect("created").entries(), 2);
        assert!(arm.get_child("missing").is_none());
    }

    #[test]
    fn json_is_sorted_and_insertion_order_independent() {
        let build = |order: &[&'static str]| {
            let rec = Recorder::new();
            let t = rec.handle();
            for name in order {
                t.child(name).count("hits", 1);
                t.count(name, 2);
            }
            rec.to_json_string()
        };
        let a = build(&["beta", "alpha", "gamma"]);
        let b = build(&["gamma", "beta", "alpha"]);
        assert_eq!(a, b);
        assert!(a.starts_with("{\"v\":1,\"spans\":{\"name\":\"root\""), "{a}");
        assert!(!a.contains('\n'));
        assert!(!a.contains("busy_ns"), "timings are opt-in: {a}");
    }

    #[test]
    fn timings_flag_adds_busy_fields() {
        let rec = Recorder::with_timings();
        let t = rec.handle();
        drop(t.span("work"));
        let json = rec.to_json_string();
        assert!(json.contains("\"busy_ns\":"), "{json}");
        assert!(rec.to_tree_string().contains("busy_ms="));
    }

    #[test]
    fn tree_export_lists_phases() {
        let rec = Recorder::new();
        let t = rec.handle();
        t.work(CheckpointClass::Driver, 1);
        let arm = t.span("small");
        arm.count("lp.solves", 3);
        arm.gauge_max("peak", 7);
        arm.observe("sizes", 4);
        drop(arm);
        let tree = rec.to_tree_string();
        assert!(tree.starts_with("root  n=0  work=1 (driver=1)\n"), "{tree}");
        assert!(tree.contains("  small  n=1  work=0  lp.solves=3  max:peak=7  sizes~1"), "{tree}");
    }

    #[test]
    fn tree_export_order_is_insertion_independent() {
        // Regression for the counter/child ordering contract: a child
        // created *after* its parent's counters (and counters added
        // after the child) must render identically to the reverse
        // insertion order — the exporters sort at render time.
        let build = |counters_first: bool| {
            let rec = Recorder::new();
            let t = rec.handle();
            if counters_first {
                t.count("zeta", 1);
                t.count("alpha", 2);
                t.child("kid").count("hits", 1);
            } else {
                t.child("kid").count("hits", 1);
                t.count("alpha", 2);
                t.count("zeta", 1);
            }
            rec.to_tree_string()
        };
        let a = build(true);
        let b = build(false);
        assert_eq!(a, b);
        assert!(a.starts_with("root  n=0  work=0  alpha=2  zeta=1\n"), "{a}");
        assert!(a.contains("  kid  n=0  work=0  hits=1"), "{a}");
    }

    #[test]
    fn snapshot_captures_the_sorted_tree() {
        let rec = Recorder::new();
        let t = rec.handle();
        t.work(CheckpointClass::Driver, 3);
        let arm = t.span("beta");
        arm.count("hits", 2);
        arm.observe("sizes", 5);
        drop(arm);
        t.child("alpha").gauge_max("peak", 9);
        let snap = rec.snapshot();
        assert_eq!(snap.name, "root");
        assert_eq!(snap.work_total(), 3);
        // Children sorted by name regardless of creation order.
        let names: Vec<&str> = snap.children.iter().map(|c| c.name).collect();
        assert_eq!(names, vec!["alpha", "beta"]);
        let beta = snap.child("beta").expect("captured");
        assert_eq!(beta.entries, 1);
        assert_eq!(beta.counters, vec![("hits", 2)]);
        assert_eq!(beta.hists.len(), 1);
        assert_eq!(beta.hists[0].1.total(), 1);
        assert_eq!(snap.child("alpha").expect("captured").gauges, vec![("peak", 9)]);
        assert!(snap.child("missing").is_none());
        // The off handle has nothing to snapshot.
        assert!(Telemetry::off().snapshot_node().is_none());
        assert_eq!(t.snapshot_node().expect("enabled"), snap);
    }

    #[test]
    fn push_u64_matches_display() {
        for v in [0u64, 1, 9, 10, 123, u64::MAX] {
            let mut s = String::new();
            push_u64(&mut s, v);
            assert_eq!(s, v.to_string());
        }
    }
}

//! Canonical-instance caching primitives for the serve layer.
//!
//! `sap serve` answers repeated instances from a bounded cache instead
//! of re-running the solver portfolio. Two pieces live here because
//! they are pure data structures with no I/O: a streaming FNV-1a
//! fingerprint (the same idiom the rectpack MWIS memo uses for
//! hash-consing) and a small LRU map. Both are deterministic: the
//! fingerprint depends only on the fed bytes, and the LRU evicts by a
//! logical tick counter, never by wall clock, so a replayed request
//! stream produces the identical hit/miss/eviction sequence.

use std::collections::HashMap;
use std::hash::Hash;

/// Streaming 64-bit FNV-1a hasher.
///
/// Not cryptographic — collision resistance is "good enough for a
/// cache key" only. Callers that cannot tolerate collisions must store
/// the full key alongside the fingerprint (the serve cache keys on the
/// fingerprint plus solve parameters and accepts the residual risk, as
/// the PR4 memoization layer already does).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a(u64);

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv1a {
    /// A fresh hasher at the offset basis.
    pub fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    /// Feeds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds one `u64` in little-endian byte order.
    pub fn write_u64(&mut self, x: u64) {
        self.write_bytes(&x.to_le_bytes());
    }

    /// The current digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

/// A bounded map with least-recently-used eviction.
///
/// Recency is a monotone logical tick bumped on every access, so the
/// eviction order is a pure function of the operation sequence. A
/// capacity of zero disables the cache entirely (every `insert` is a
/// no-op and every `get` misses), which gives callers a uniform "cache
/// off" switch.
#[derive(Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    tick: u64,
    slots: HashMap<K, Slot<V>>,
}

#[derive(Debug)]
struct Slot<V> {
    value: V,
    last_used: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// An empty cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        LruCache { capacity, tick: 0, slots: HashMap::new() }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Advances the logical clock and returns the new tick.
    ///
    /// The eviction scan relies on `last_used` ticks being **unique**
    /// (a unique minimum makes the victim independent of hash iteration
    /// order), so the counter must never wrap or saturate into repeats.
    /// Near the ceiling the live ticks are renumbered 1..=len in their
    /// current recency order — a pure compaction that preserves the
    /// eviction order and restores headroom, keeping behaviour
    /// deterministic even after `u64::MAX` operations.
    fn next_tick(&mut self) -> u64 {
        if self.tick == u64::MAX {
            // lint:allow(n1) — sorted by the unique `last_used` tick
            // before use; hash iteration order cannot survive the sort.
            let mut order: Vec<K> = self.slots.keys().cloned().collect();
            order.sort_by_key(|k| self.slots.get(k).map_or(0, |s| s.last_used));
            for (rank, key) in order.iter().enumerate() {
                if let Some(slot) = self.slots.get_mut(key) {
                    slot.last_used = rank as u64 + 1;
                }
            }
            self.tick = self.slots.len() as u64;
        }
        self.tick = self.tick.saturating_add(1);
        self.tick
    }

    /// Looks up `key`, marking it most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let tick = self.next_tick();
        match self.slots.get_mut(key) {
            Some(slot) => {
                slot.last_used = tick;
                Some(&slot.value)
            }
            None => None,
        }
    }

    /// Inserts (or replaces) `key`, evicting the least-recently-used
    /// entry if the cache is full. Returns `true` iff an eviction
    /// happened.
    pub fn insert(&mut self, key: K, value: V) -> bool {
        if self.capacity == 0 {
            return false;
        }
        let tick = self.next_tick();
        if let Some(slot) = self.slots.get_mut(&key) {
            slot.value = value;
            slot.last_used = tick;
            return false;
        }
        let mut evicted = false;
        if self.slots.len() >= self.capacity {
            let victim = self
                .slots
                // lint:allow(n1) — `last_used` ticks are strictly
                // monotone, so min_by_key has a unique minimum and hash
                // iteration order cannot change the evicted key.
                .iter()
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(k, _)| k.clone());
            if let Some(victim) = victim {
                self.slots.remove(&victim);
                evicted = true;
            }
        }
        self.slots.insert(key, Slot { value, last_used: tick });
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        let mut h = Fnv1a::new();
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h2 = Fnv1a::new();
        h2.write_bytes(b"foobar");
        assert_eq!(h2.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn fnv_u64_feed_is_order_sensitive() {
        let mut a = Fnv1a::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Fnv1a::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut cache: LruCache<u32, &str> = LruCache::new(2);
        assert!(!cache.insert(1, "one"));
        assert!(!cache.insert(2, "two"));
        // Touch 1 so 2 becomes the LRU victim.
        assert_eq!(cache.get(&1), Some(&"one"));
        assert!(cache.insert(3, "three"));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&2), None);
        assert_eq!(cache.get(&1), Some(&"one"));
        assert_eq!(cache.get(&3), Some(&"three"));
    }

    #[test]
    fn lru_replace_does_not_evict() {
        let mut cache: LruCache<u32, u32> = LruCache::new(1);
        assert!(!cache.insert(1, 10));
        assert!(!cache.insert(1, 20));
        assert_eq!(cache.get(&1), Some(&20));
        assert!(cache.insert(2, 30));
        assert_eq!(cache.get(&1), None);
    }

    #[test]
    fn zero_capacity_disables_cache() {
        let mut cache: LruCache<u32, u32> = LruCache::new(0);
        assert!(!cache.insert(1, 10));
        assert!(cache.is_empty());
        assert_eq!(cache.get(&1), None);
    }

    #[test]
    fn tick_ceiling_preserves_eviction_order() {
        // Start the logical clock one step below the ceiling: the next
        // operations must renumber instead of wrapping (debug overflow
        // panic) or saturating into duplicate ticks (nondeterministic
        // min_by_key victim).
        let mut cache: LruCache<u32, &str> =
            LruCache { capacity: 3, tick: u64::MAX - 1, slots: HashMap::new() };
        assert!(!cache.insert(1, "one")); // tick = MAX
        assert!(!cache.insert(2, "two")); // renumbers, then ticks
        assert!(!cache.insert(3, "three"));
        assert!(cache.tick < u64::MAX, "clock was compacted away from the ceiling");
        // Recency order must have survived the renumbering: touch 1 and
        // 3, leaving 2 as the unique LRU victim.
        assert_eq!(cache.get(&1), Some(&"one"));
        assert_eq!(cache.get(&3), Some(&"three"));
        assert!(cache.insert(4, "four"));
        assert_eq!(cache.get(&2), None, "the LRU entry is the victim at the ceiling");
        assert_eq!(cache.get(&1), Some(&"one"));
        assert_eq!(cache.get(&3), Some(&"three"));
        assert_eq!(cache.get(&4), Some(&"four"));
    }

    #[test]
    fn tick_ceiling_renumber_is_deterministic() {
        let run = || {
            let mut cache: LruCache<u64, u64> =
                LruCache { capacity: 4, tick: u64::MAX - 6, slots: HashMap::new() };
            let mut evictions = Vec::new();
            for i in 0..24u64 {
                let _ = cache.get(&(i % 6));
                evictions.push(cache.insert(i % 9, i));
            }
            evictions
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn eviction_sequence_is_deterministic() {
        // Same operation sequence twice → same eviction pattern, even
        // though the backing store is a HashMap (the unique-min tick
        // picks the victim, not iteration order).
        let run = || {
            let mut cache: LruCache<u64, u64> = LruCache::new(3);
            let mut evictions = Vec::new();
            for i in 0..20u64 {
                let _ = cache.get(&(i % 5));
                evictions.push(cache.insert(i % 7, i));
            }
            evictions
        };
        assert_eq!(run(), run());
    }
}

//! Canonical-instance caching primitives for the serve layer.
//!
//! `sap serve` answers repeated instances from a bounded cache instead
//! of re-running the solver portfolio. Two pieces live here because
//! they are pure data structures with no I/O: a streaming FNV-1a
//! fingerprint (the same idiom the rectpack MWIS memo uses for
//! hash-consing) and a small LRU map. Both are deterministic: the
//! fingerprint depends only on the fed bytes, and the LRU evicts by a
//! logical tick counter, never by wall clock, so a replayed request
//! stream produces the identical hit/miss/eviction sequence.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Mutex;

/// Streaming 64-bit FNV-1a hasher.
///
/// Not cryptographic — collision resistance is "good enough for a
/// cache key" only. Callers that cannot tolerate collisions must store
/// the full key alongside the fingerprint (the serve cache keys on the
/// fingerprint plus solve parameters and accepts the residual risk, as
/// the PR4 memoization layer already does).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a(u64);

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv1a {
    /// A fresh hasher at the offset basis.
    pub fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    /// A fresh hasher at a caller-chosen basis. Two hashers with
    /// different bases form (near-)independent hash functions over the
    /// same byte stream — the serve cache uses a second keyed instance
    /// as a collision check on its primary fingerprint, so an FNV-1a
    /// collision in one stream does not alias in the other.
    pub fn with_basis(basis: u64) -> Self {
        Fnv1a(basis)
    }

    /// Feeds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds one `u64` in little-endian byte order.
    pub fn write_u64(&mut self, x: u64) {
        self.write_bytes(&x.to_le_bytes());
    }

    /// The current digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

/// A bounded map with least-recently-used eviction.
///
/// Recency is a monotone logical tick bumped on every access, so the
/// eviction order is a pure function of the operation sequence. A
/// capacity of zero disables the cache entirely (every `insert` is a
/// no-op and every `get` misses), which gives callers a uniform "cache
/// off" switch.
#[derive(Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    tick: u64,
    slots: HashMap<K, Slot<V>>,
}

#[derive(Debug)]
struct Slot<V> {
    value: V,
    last_used: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// An empty cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        LruCache { capacity, tick: 0, slots: HashMap::new() }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// The configured capacity (0 = caching disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Advances the logical clock and returns the new tick.
    ///
    /// The eviction scan relies on `last_used` ticks being **unique**
    /// (a unique minimum makes the victim independent of hash iteration
    /// order), so the counter must never wrap or saturate into repeats.
    /// Near the ceiling the live ticks are renumbered 1..=len in their
    /// current recency order — a pure compaction that preserves the
    /// eviction order and restores headroom, keeping behaviour
    /// deterministic even after `u64::MAX` operations.
    fn next_tick(&mut self) -> u64 {
        if self.tick == u64::MAX {
            // lint:allow(n1) — sorted by the unique `last_used` tick
            // before use; hash iteration order cannot survive the sort.
            let mut order: Vec<K> = self.slots.keys().cloned().collect();
            order.sort_by_key(|k| self.slots.get(k).map_or(0, |s| s.last_used));
            for (rank, key) in order.iter().enumerate() {
                if let Some(slot) = self.slots.get_mut(key) {
                    slot.last_used = rank as u64 + 1;
                }
            }
            self.tick = self.slots.len() as u64;
        }
        self.tick = self.tick.saturating_add(1);
        self.tick
    }

    /// Looks up `key`, marking it most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let tick = self.next_tick();
        match self.slots.get_mut(key) {
            Some(slot) => {
                slot.last_used = tick;
                Some(&slot.value)
            }
            None => None,
        }
    }

    /// Inserts (or replaces) `key`, evicting the least-recently-used
    /// entry if the cache is full. Returns `true` iff an eviction
    /// happened.
    pub fn insert(&mut self, key: K, value: V) -> bool {
        if self.capacity == 0 {
            return false;
        }
        let tick = self.next_tick();
        if let Some(slot) = self.slots.get_mut(&key) {
            slot.value = value;
            slot.last_used = tick;
            return false;
        }
        let mut evicted = false;
        if self.slots.len() >= self.capacity {
            let victim = self
                .slots
                // lint:allow(n1) — `last_used` ticks are strictly
                // monotone, so min_by_key has a unique minimum and hash
                // iteration order cannot change the evicted key.
                .iter()
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(k, _)| k.clone());
            if let Some(victim) = victim {
                self.slots.remove(&victim);
                evicted = true;
            }
        }
        self.slots.insert(key, Slot { value, last_used: tick });
        evicted
    }
}

/// A sharded LRU: `N` independent [`LruCache`] shards, each behind its
/// own lock, with entries routed by `route % N` (the serve layer routes
/// by canonical instance fingerprint). Concurrent connections touching
/// different shards never contend, so cache traffic cannot serialize
/// the solve hot path.
///
/// Capacity is split `ceil(capacity / N)` per shard, so the **total**
/// capacity never rounds below the configured one (it may round up by
/// at most `N - 1` entries). A capacity of zero disables every shard,
/// preserving [`LruCache`]'s uniform "cache off" switch.
///
/// Recency and eviction stay per-shard deterministic: each shard keeps
/// its own logical tick, so for a fixed per-shard operation sequence
/// the hit/miss/eviction pattern is a pure function of that sequence.
/// Values are returned by clone — entries stay small (the serve layer
/// stores `Arc`-backed metadata next to the payload string).
#[derive(Debug)]
pub struct ShardedLru<K, V> {
    shards: Vec<Mutex<LruCache<K, V>>>,
}

impl<K: Eq + Hash + Clone, V: Clone> ShardedLru<K, V> {
    /// A cache of `capacity` total entries split over `shards` shards
    /// (`shards` is clamped to at least 1).
    pub fn new(capacity: usize, shards: usize) -> Self {
        let n = shards.max(1);
        let per_shard = if capacity == 0 { 0 } else { capacity.div_ceil(n) };
        ShardedLru {
            shards: (0..n).map(|_| Mutex::new(LruCache::new(per_shard))).collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Sum of the per-shard capacities (≥ the configured capacity).
    pub fn total_capacity(&self) -> usize {
        self.shards
            .iter()
            .map(|s| Self::lock(s).capacity())
            .fold(0usize, usize::saturating_add)
    }

    /// Total live entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| Self::lock(s).len())
            .fold(0usize, usize::saturating_add)
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| Self::lock(s).is_empty())
    }

    /// Live entries per shard, in shard order (telemetry: the hottest
    /// shard is `shard_lens().max()`).
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards.iter().map(|s| Self::lock(s).len()).collect()
    }

    /// A poisoned shard lock only means another thread panicked mid-
    /// operation; the shard data itself is always in a consistent state
    /// (LruCache never panics between linked updates), so recover the
    /// guard rather than poisoning the whole service.
    fn lock<'a>(shard: &'a Mutex<LruCache<K, V>>) -> std::sync::MutexGuard<'a, LruCache<K, V>> {
        match shard.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn shard_for(&self, route: u64) -> &Mutex<LruCache<K, V>> {
        let idx = (route % self.shards.len() as u64) as usize;
        &self.shards[idx]
    }

    /// Looks up `key` in the shard selected by `route`, marking it
    /// most-recently-used on a hit. Returns a clone of the value.
    pub fn get(&self, route: u64, key: &K) -> Option<V> {
        Self::lock(self.shard_for(route)).get(key).cloned()
    }

    /// Inserts (or replaces) `key` in the shard selected by `route`,
    /// evicting that shard's LRU entry if it is full. Returns `true`
    /// iff an eviction happened.
    pub fn insert(&self, route: u64, key: K, value: V) -> bool {
        Self::lock(self.shard_for(route)).insert(key, value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        let mut h = Fnv1a::new();
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h2 = Fnv1a::new();
        h2.write_bytes(b"foobar");
        assert_eq!(h2.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn fnv_u64_feed_is_order_sensitive() {
        let mut a = Fnv1a::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Fnv1a::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut cache: LruCache<u32, &str> = LruCache::new(2);
        assert!(!cache.insert(1, "one"));
        assert!(!cache.insert(2, "two"));
        // Touch 1 so 2 becomes the LRU victim.
        assert_eq!(cache.get(&1), Some(&"one"));
        assert!(cache.insert(3, "three"));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&2), None);
        assert_eq!(cache.get(&1), Some(&"one"));
        assert_eq!(cache.get(&3), Some(&"three"));
    }

    #[test]
    fn lru_replace_does_not_evict() {
        let mut cache: LruCache<u32, u32> = LruCache::new(1);
        assert!(!cache.insert(1, 10));
        assert!(!cache.insert(1, 20));
        assert_eq!(cache.get(&1), Some(&20));
        assert!(cache.insert(2, 30));
        assert_eq!(cache.get(&1), None);
    }

    #[test]
    fn zero_capacity_disables_cache() {
        let mut cache: LruCache<u32, u32> = LruCache::new(0);
        assert!(!cache.insert(1, 10));
        assert!(cache.is_empty());
        assert_eq!(cache.get(&1), None);
    }

    #[test]
    fn tick_ceiling_preserves_eviction_order() {
        // Start the logical clock one step below the ceiling: the next
        // operations must renumber instead of wrapping (debug overflow
        // panic) or saturating into duplicate ticks (nondeterministic
        // min_by_key victim).
        let mut cache: LruCache<u32, &str> =
            LruCache { capacity: 3, tick: u64::MAX - 1, slots: HashMap::new() };
        assert!(!cache.insert(1, "one")); // tick = MAX
        assert!(!cache.insert(2, "two")); // renumbers, then ticks
        assert!(!cache.insert(3, "three"));
        assert!(cache.tick < u64::MAX, "clock was compacted away from the ceiling");
        // Recency order must have survived the renumbering: touch 1 and
        // 3, leaving 2 as the unique LRU victim.
        assert_eq!(cache.get(&1), Some(&"one"));
        assert_eq!(cache.get(&3), Some(&"three"));
        assert!(cache.insert(4, "four"));
        assert_eq!(cache.get(&2), None, "the LRU entry is the victim at the ceiling");
        assert_eq!(cache.get(&1), Some(&"one"));
        assert_eq!(cache.get(&3), Some(&"three"));
        assert_eq!(cache.get(&4), Some(&"four"));
    }

    #[test]
    fn tick_ceiling_renumber_is_deterministic() {
        let run = || {
            let mut cache: LruCache<u64, u64> =
                LruCache { capacity: 4, tick: u64::MAX - 6, slots: HashMap::new() };
            let mut evictions = Vec::new();
            for i in 0..24u64 {
                let _ = cache.get(&(i % 6));
                evictions.push(cache.insert(i % 9, i));
            }
            evictions
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn keyed_basis_gives_an_independent_hash() {
        let mut a = Fnv1a::new();
        let mut b = Fnv1a::with_basis(FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15);
        a.write_bytes(b"same input");
        b.write_bytes(b"same input");
        assert_ne!(a.finish(), b.finish());
        // The default-basis constructor and with_basis(FNV_OFFSET) agree.
        let mut c = Fnv1a::with_basis(FNV_OFFSET);
        c.write_bytes(b"same input");
        let mut d = Fnv1a::new();
        d.write_bytes(b"same input");
        assert_eq!(c.finish(), d.finish());
    }

    #[test]
    fn sharded_capacity_never_rounds_below_configured() {
        for capacity in [1usize, 2, 3, 7, 64, 100, 256, 1000] {
            for shards in [1usize, 2, 3, 5, 8, 16, 64] {
                let cache: ShardedLru<u64, u64> = ShardedLru::new(capacity, shards);
                assert_eq!(cache.shard_count(), shards);
                assert!(
                    cache.total_capacity() >= capacity,
                    "capacity {capacity} over {shards} shards rounded down to {}",
                    cache.total_capacity()
                );
                // And never rounds up by a whole extra shard's worth.
                assert!(cache.total_capacity() < capacity.saturating_add(shards));
            }
        }
    }

    #[test]
    fn sharded_zero_capacity_disables_every_shard() {
        let cache: ShardedLru<u64, u64> = ShardedLru::new(0, 8);
        assert!(!cache.insert(3, 3, 30));
        assert!(cache.is_empty());
        assert_eq!(cache.get(3, &3), None);
        assert_eq!(cache.total_capacity(), 0);
    }

    #[test]
    fn sharded_routes_by_modulo_and_keeps_shards_independent() {
        let cache: ShardedLru<u64, &str> = ShardedLru::new(8, 4);
        // Keys routed to shard 1 (route % 4 == 1) and shard 2.
        assert!(!cache.insert(1, 1, "one"));
        assert!(!cache.insert(5, 5, "five"));
        assert!(!cache.insert(2, 2, "two"));
        assert_eq!(cache.get(1, &1), Some("one"));
        assert_eq!(cache.get(5, &5), Some("five"));
        assert_eq!(cache.get(2, &2), Some("two"));
        // A key is only visible through its own route's shard.
        assert_eq!(cache.get(0, &1), None);
        assert_eq!(cache.len(), 3);
        let lens = cache.shard_lens();
        assert_eq!(lens.len(), 4);
        assert_eq!(lens.iter().sum::<usize>(), 3);
        assert_eq!(lens[1], 2, "routes 1 and 5 share shard 1");
    }

    #[test]
    fn sharded_clamps_zero_shards_to_one() {
        let cache: ShardedLru<u64, u64> = ShardedLru::new(4, 0);
        assert_eq!(cache.shard_count(), 1);
        assert!(!cache.insert(9, 9, 90));
        assert_eq!(cache.get(9, &9), Some(90));
    }

    #[test]
    fn sharded_eviction_is_per_shard_lru() {
        // Single shard of capacity 2 behaves exactly like LruCache.
        let cache: ShardedLru<u64, u64> = ShardedLru::new(2, 1);
        assert!(!cache.insert(1, 1, 10));
        assert!(!cache.insert(2, 2, 20));
        assert_eq!(cache.get(1, &1), Some(10)); // touch 1; 2 is LRU
        assert!(cache.insert(3, 3, 30));
        assert_eq!(cache.get(2, &2), None);
        assert_eq!(cache.get(1, &1), Some(10));
        assert_eq!(cache.get(3, &3), Some(30));
    }

    #[test]
    fn eviction_sequence_is_deterministic() {
        // Same operation sequence twice → same eviction pattern, even
        // though the backing store is a HashMap (the unique-min tick
        // picks the victim, not iteration order).
        let run = || {
            let mut cache: LruCache<u64, u64> = LruCache::new(3);
            let mut evictions = Vec::new();
            for i in 0..20u64 {
                let _ = cache.get(&(i % 5));
                evictions.push(cache.insert(i % 7, i));
            }
            evictions
        };
        assert_eq!(run(), run());
    }
}

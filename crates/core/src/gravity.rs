//! Gravity normalisation (Observation 11, Fig. 5).
//!
//! Observation 11 of the paper: there is always an optimal SAP solution in
//! which every task either sits at height 0 or rests directly on top of
//! another selected task. The constructive form used throughout this
//! workspace is [`canonical_heights`]: given a *vertical order* of the
//! selected tasks, place each task at the lowest position compatible with
//! the tasks below it. Applying this to a feasible solution ordered by its
//! current heights can only lower heights ([`apply_gravity`]), reproducing
//! the figure's "after gravity" picture.

use crate::instance::Instance;
use crate::solution::{Placement, SapSolution};
use crate::units::{Height, TaskId};

/// Greedily assigns heights to `order` (bottom-most first): each task is
/// placed at the maximum top among earlier, span-overlapping tasks (0 when
/// none). Returns `None` when some task would poke above its bottleneck —
/// i.e. the given order does not yield a feasible packing.
///
/// When `order` is the vertical order of an existing feasible solution the
/// result is always `Some` and pointwise no higher (see [`apply_gravity`]).
pub fn canonical_heights(instance: &Instance, order: &[TaskId]) -> Option<SapSolution> {
    let mut placements: Vec<Placement> = Vec::with_capacity(order.len());
    for &j in order {
        let span = instance.span(j);
        let mut h: Height = 0;
        for p in &placements {
            if instance.span(p.task).overlaps(span) {
                h = h.max(p.height + instance.demand(p.task));
            }
        }
        if h + instance.demand(j) > instance.bottleneck(j) {
            return None;
        }
        placements.push(Placement { task: j, height: h });
    }
    Some(SapSolution::new(placements))
}

/// Applies gravity to a feasible solution: sorts by current height
/// (ties by task id for determinism) and re-places greedily. The result is
/// feasible, selects the same tasks, and has pointwise no larger heights.
///
/// # Panics
///
/// Panics when `solution` is not feasible for `instance` (gravity of a
/// feasible solution cannot fail).
pub fn apply_gravity(instance: &Instance, solution: &SapSolution) -> SapSolution {
    let mut order: Vec<(Height, TaskId)> = solution
        .placements
        .iter()
        .map(|p| (p.height, p.task))
        .collect();
    order.sort_unstable();
    let ids: Vec<TaskId> = order.into_iter().map(|(_, j)| j).collect();
    canonical_heights(instance, &ids)
        // lint:allow(p1) — Observation 11: re-grounding a feasible solution in
        // its vertical order is always feasible; the input is validated by the
        // caller's contract.
        .expect("gravity of a feasible solution stays feasible")
}

/// True when the solution is *grounded* in the sense of Observation 11:
/// every task sits at height 0 or exactly on top of an overlapping task.
pub fn is_grounded(instance: &Instance, solution: &SapSolution) -> bool {
    solution.placements.iter().all(|p| {
        p.height == 0
            || solution.placements.iter().any(|q| {
                q.task != p.task
                    && instance.span(q.task).overlaps(instance.span(p.task))
                    && q.height + instance.demand(q.task) == p.height
            })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::PathNetwork;
    use crate::task::Task;

    fn instance() -> Instance {
        let net = PathNetwork::uniform(4, 10).unwrap();
        let tasks = vec![
            Task::of(0, 2, 2, 1),
            Task::of(1, 3, 3, 1),
            Task::of(2, 4, 1, 1),
            Task::of(0, 4, 2, 1),
        ];
        Instance::new(net, tasks).unwrap()
    }

    #[test]
    fn canonical_heights_stack_in_order() {
        let inst = instance();
        let sol = canonical_heights(&inst, &[0, 1, 2, 3]).unwrap();
        sol.validate(&inst).unwrap();
        assert_eq!(sol.height_of(0), Some(0));
        assert_eq!(sol.height_of(1), Some(2)); // rests on task 0
        assert_eq!(sol.height_of(2), Some(5)); // rests on task 1
        assert_eq!(sol.height_of(3), Some(6)); // rests on task 2 (max top)
    }

    #[test]
    fn canonical_heights_detect_infeasible_order() {
        let net = PathNetwork::uniform(2, 3).unwrap();
        let tasks = vec![Task::of(0, 2, 2, 1), Task::of(0, 2, 2, 1)];
        let inst = Instance::new(net, tasks).unwrap();
        assert!(canonical_heights(&inst, &[0, 1]).is_none());
        assert!(canonical_heights(&inst, &[0]).is_some());
    }

    #[test]
    fn gravity_lowers_floating_tasks() {
        let inst = instance();
        // Feasible but floating: everything shifted up by 3.
        let sol = SapSolution::from_pairs([(0, 3), (1, 5), (2, 8)]);
        sol.validate(&inst).unwrap();
        assert!(!is_grounded(&inst, &sol));
        let dropped = apply_gravity(&inst, &sol);
        dropped.validate(&inst).unwrap();
        assert!(is_grounded(&inst, &dropped));
        assert_eq!(dropped.height_of(0), Some(0));
        assert_eq!(dropped.height_of(1), Some(2));
        assert_eq!(dropped.height_of(2), Some(5));
        // Pointwise no larger.
        for p in &dropped.placements {
            assert!(p.height <= sol.height_of(p.task).unwrap());
        }
    }

    #[test]
    fn gravity_is_idempotent() {
        let inst = instance();
        let sol = canonical_heights(&inst, &[3, 2, 1, 0]).unwrap();
        let once = apply_gravity(&inst, &sol);
        let twice = apply_gravity(&inst, &once);
        assert_eq!(once, twice);
    }

    #[test]
    fn grounded_detects_support() {
        let inst = instance();
        let sol = SapSolution::from_pairs([(0, 0), (1, 2)]);
        assert!(is_grounded(&inst, &sol));
        let sol = SapSolution::from_pairs([(0, 0), (1, 3)]);
        assert!(!is_grounded(&inst, &sol));
    }

    #[test]
    fn empty_solution_is_grounded() {
        let inst = instance();
        let sol = SapSolution::empty();
        assert!(is_grounded(&inst, &sol));
        assert_eq!(apply_gravity(&inst, &sol), SapSolution::empty());
    }
}

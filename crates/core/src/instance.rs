//! SAP / UFPP instances.

use crate::error::{SapError, SapResult};
use crate::network::PathNetwork;
use crate::task::{Span, Task};
use crate::units::{Capacity, Demand, TaskId, Weight};

/// A SAP (equivalently UFPP) instance: a path network plus a task set.
///
/// Construction validates every task span against the network and
/// pre-computes each task's bottleneck capacity
/// `b(j) = min_{e ∈ I_j} c_e`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    network: PathNetwork,
    tasks: Vec<Task>,
    bottlenecks: Vec<Capacity>,
}

impl Instance {
    /// Creates an instance.
    ///
    /// # Errors
    ///
    /// * [`SapError::InvalidSpan`] when a task's span exceeds the network;
    /// * [`SapError::DemandExceedsBottleneck`] when a task could never be
    ///   scheduled (`d_j > b(j)`). Use [`Instance::new_pruning`] to drop such
    ///   tasks silently instead.
    pub fn new(network: PathNetwork, tasks: Vec<Task>) -> SapResult<Self> {
        let m = network.num_edges();
        let mut bottlenecks = Vec::with_capacity(tasks.len());
        for (id, t) in tasks.iter().enumerate() {
            if t.span.hi > m {
                return Err(SapError::InvalidSpan { task: id });
            }
            let b = network.bottleneck(t.span);
            if t.demand > b {
                return Err(SapError::DemandExceedsBottleneck { task: id });
            }
            bottlenecks.push(b);
        }
        Ok(Instance { network, tasks, bottlenecks })
    }

    /// Creates an instance, silently discarding tasks whose demand exceeds
    /// their bottleneck (they can never appear in any feasible solution).
    /// Returns the instance together with the ids (indices into `tasks`)
    /// that survived.
    pub fn new_pruning(network: PathNetwork, tasks: Vec<Task>) -> SapResult<(Self, Vec<TaskId>)> {
        let m = network.num_edges();
        let mut kept = Vec::new();
        let mut kept_ids = Vec::new();
        for (id, t) in tasks.into_iter().enumerate() {
            if t.span.hi > m {
                return Err(SapError::InvalidSpan { task: id });
            }
            if t.demand <= network.bottleneck(t.span) {
                kept.push(t);
                kept_ids.push(id);
            }
        }
        let inst = Instance::new(network, kept)?;
        Ok((inst, kept_ids))
    }

    /// The underlying path network.
    #[inline]
    pub fn network(&self) -> &PathNetwork {
        &self.network
    }

    /// All tasks.
    #[inline]
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Number of tasks `n`.
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Number of edges `m`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.network.num_edges()
    }

    /// The task with id `j`.
    #[inline]
    pub fn task(&self, j: TaskId) -> &Task {
        &self.tasks[j]
    }

    /// Bottleneck capacity `b(j)` (pre-computed).
    #[inline]
    pub fn bottleneck(&self, j: TaskId) -> Capacity {
        self.bottlenecks[j]
    }

    /// Demand of task `j`.
    #[inline]
    pub fn demand(&self, j: TaskId) -> Demand {
        self.tasks[j].demand
    }

    /// Weight of task `j`.
    #[inline]
    pub fn weight(&self, j: TaskId) -> Weight {
        self.tasks[j].weight
    }

    /// Span of task `j`.
    #[inline]
    pub fn span(&self, j: TaskId) -> Span {
        self.tasks[j].span
    }

    /// Total weight of a set of task ids.
    pub fn total_weight(&self, ids: &[TaskId]) -> Weight {
        ids.iter().map(|&j| self.tasks[j].weight).sum()
    }

    /// Total demand `d(S)` of a set of task ids.
    pub fn total_demand(&self, ids: &[TaskId]) -> u64 {
        ids.iter().map(|&j| self.tasks[j].demand).sum()
    }

    /// Per-edge load `d(S(e))` of a set of task ids, computed with a
    /// difference array in O(|S| + m).
    pub fn loads(&self, ids: &[TaskId]) -> Vec<u64> {
        let m = self.num_edges();
        let mut diff = vec![0i128; m + 1];
        for &j in ids {
            let t = &self.tasks[j];
            diff[t.span.lo] += t.demand as i128;
            diff[t.span.hi] -= t.demand as i128;
        }
        let mut loads = Vec::with_capacity(m);
        let mut acc = 0i128;
        for d in diff.iter().take(m) {
            acc += d;
            loads.push(acc as u64);
        }
        loads
    }

    /// `LOAD(S)` — the maximum per-edge load of a set of task ids.
    pub fn max_load(&self, ids: &[TaskId]) -> u64 {
        self.loads(ids).into_iter().max().unwrap_or(0)
    }

    /// Builds a sub-instance containing exactly the tasks in `ids`
    /// (in the given order) over the same network. Returns the
    /// sub-instance and the id map: entry `i` of the map is the original
    /// id of the sub-instance's task `i`.
    pub fn restrict(&self, ids: &[TaskId]) -> (Instance, Vec<TaskId>) {
        let tasks: Vec<Task> = ids.iter().map(|&j| self.tasks[j]).collect();
        let inst = Instance::new(self.network.clone(), tasks)
            // lint:allow(p1) — the tasks were validated against this same
            // network when `self` was constructed, so revalidation cannot fail.
            .expect("restriction of a valid instance is valid");
        (inst, ids.to_vec())
    }

    /// Builds a sub-instance with the same tasks but a different capacity
    /// profile. Tasks whose demand now exceeds their bottleneck are pruned;
    /// the returned map gives original ids.
    pub fn with_network(&self, network: PathNetwork) -> SapResult<(Instance, Vec<TaskId>)> {
        Instance::new_pruning(network, self.tasks.clone())
    }

    /// All task ids `0 .. n`.
    pub fn all_ids(&self) -> Vec<TaskId> {
        (0..self.tasks.len()).collect()
    }

    /// Maximum demand over all tasks (0 when there are none).
    pub fn max_demand(&self) -> Demand {
        self.tasks.iter().map(|t| t.demand).max().unwrap_or(0)
    }

    /// Total weight of all tasks.
    pub fn weight_sum(&self) -> Weight {
        self.tasks.iter().map(|t| t.weight).sum()
    }

    /// True when the instance satisfies the *no-bottleneck assumption*
    /// (NBA, §1 of the paper): `max_j d_j ≤ min_e c_e`. Several UFPP
    /// results in the literature (e.g. Chakrabarti et al., Chekuri et
    /// al.) hold only under NBA; the paper's algorithms do **not** need
    /// it, which the NBA-free test workloads exercise.
    pub fn satisfies_nba(&self) -> bool {
        self.max_demand() <= self.network.min_capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst() -> Instance {
        let net = PathNetwork::new(vec![4, 7, 2, 9]).unwrap();
        let tasks = vec![
            Task::of(0, 2, 3, 5),  // b = 4
            Task::of(1, 4, 2, 6),  // b = 2
            Task::of(3, 4, 9, 1),  // b = 9
        ];
        Instance::new(net, tasks).unwrap()
    }

    #[test]
    fn bottlenecks_precomputed() {
        let i = inst();
        assert_eq!(i.bottleneck(0), 4);
        assert_eq!(i.bottleneck(1), 2);
        assert_eq!(i.bottleneck(2), 9);
    }

    #[test]
    fn invalid_span_rejected() {
        let net = PathNetwork::uniform(2, 5).unwrap();
        let err = Instance::new(net, vec![Task::of(0, 3, 1, 1)]).unwrap_err();
        assert_eq!(err, SapError::InvalidSpan { task: 0 });
    }

    #[test]
    fn unschedulable_task_rejected_or_pruned() {
        let net = PathNetwork::new(vec![4, 2]).unwrap();
        let tasks = vec![Task::of(0, 2, 3, 1), Task::of(0, 1, 3, 2)];
        let err = Instance::new(net.clone(), tasks.clone()).unwrap_err();
        assert_eq!(err, SapError::DemandExceedsBottleneck { task: 0 });
        let (pruned, ids) = Instance::new_pruning(net, tasks).unwrap();
        assert_eq!(pruned.num_tasks(), 1);
        assert_eq!(ids, vec![1]);
    }

    #[test]
    fn loads_via_difference_array() {
        let i = inst();
        assert_eq!(i.loads(&[0, 1, 2]), vec![3, 5, 2, 11]);
        assert_eq!(i.max_load(&[0, 1, 2]), 11);
        assert_eq!(i.max_load(&[]), 0);
        assert_eq!(i.total_weight(&[0, 2]), 6);
        assert_eq!(i.total_demand(&[0, 2]), 12);
    }

    #[test]
    fn nba_predicate() {
        // inst(): caps (4,7,2,9); max demand 9 > min cap 2 ⇒ no NBA.
        assert!(!inst().satisfies_nba());
        let net = PathNetwork::new(vec![4, 7, 9]).unwrap();
        let nba = Instance::new(net, vec![Task::of(0, 3, 4, 1), Task::of(2, 3, 2, 1)]).unwrap();
        assert!(nba.satisfies_nba());
    }

    #[test]
    fn restrict_keeps_order_and_maps_ids() {
        let i = inst();
        let (sub, map) = i.restrict(&[2, 0]);
        assert_eq!(sub.num_tasks(), 2);
        assert_eq!(map, vec![2, 0]);
        assert_eq!(sub.task(0).demand, 9);
        assert_eq!(sub.task(1).demand, 3);
    }
}

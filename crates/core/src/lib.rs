//! # sap-core
//!
//! Problem model for the **Storage Allocation Problem (SAP)** and the
//! **Unsplittable Flow Problem on Paths (UFPP)**, following
//! Bar-Yehuda, Beder & Rawitz, *A Constant Factor Approximation Algorithm
//! for the Storage Allocation Problem* (SPAA 2013 / journal 2016).
//!
//! A SAP instance consists of a path `P = (V, E)` where each edge `e` has a
//! capacity `c_e`, and a set `J` of tasks. Each task `j` is a sub-path
//! `I_j` (a contiguous range of edges), a demand `d_j` and a weight `w_j`.
//! A feasible SAP solution is a subset `S ⊆ J` together with a height
//! function `h : S → ℕ` such that
//!
//! 1. `h(j) + d_j ≤ c_e` for every `j ∈ S` and every `e ∈ I_j`, and
//! 2. if `j, i ∈ S` overlap (`I_i ∩ I_j ≠ ∅`) and `h(j) ≥ h(i)` then
//!    `h(j) ≥ h(i) + d_i` — i.e. the rectangles
//!    `[s_j, t_j) × [h(j), h(j)+d_j)` are pairwise disjoint.
//!
//! SAP is a rectangle packing problem in which rectangles may slide
//! vertically but not horizontally. Dropping the height function (keeping
//! only the per-edge load constraint) yields UFPP.
//!
//! This crate provides:
//!
//! * the instance model ([`PathNetwork`], [`Task`], [`Instance`]) and the
//!   ring variant ([`ring::RingNetwork`], [`ring::RingInstance`]);
//! * solution types ([`UfppSolution`], [`SapSolution`]) with **exact
//!   integer validators** (all quantities are `u64`);
//! * the structural toolbox the paper's algorithms are built from:
//!   bottleneck computation (via an O(1)-query sparse-table RMQ),
//!   gravity normalisation (Observation 11, Fig. 5),
//!   the β-elevation split (Lemma 14, Fig. 6),
//!   δ-small / δ-large classification and the `J_t` / `J^{k,ℓ}` strata
//!   (Fig. 2), capacity clipping (Observation 2, Fig. 3), and strip
//!   lifting/stacking (Algorithm Strip-Pack, Fig. 4);
//! * an ASCII renderer for solutions, used by the examples to reproduce
//!   the paper's figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod cache;
pub mod classify;
pub mod clip;
pub mod elevate;
pub mod error;
pub mod gravity;
pub mod instance;
pub mod json;
pub mod network;
pub mod obs;
pub mod parallel;
pub mod render;
pub mod ring;
pub mod rmq;
pub mod solution;
pub mod stack;
pub mod stats;
pub mod task;
pub mod telemetry;
pub mod units;

#[cfg(feature = "fault-injection")]
pub use budget::FaultPlan;
pub use budget::{
    ArmOutcome, ArmReport, Budget, CheckpointClass, SolveReport, WorkProfile,
    REPORT_SCHEMA_VERSION,
};
pub use cache::{Fnv1a, LruCache, ShardedLru};
pub use classify::{
    classes_k_ell, classify_by_size, is_delta_large, is_delta_small, strata_by_bottleneck,
    stratum_of, ClassifiedTasks, SizeClass,
};
pub use clip::clip_to_band;
pub use elevate::{elevation_split, is_elevated, ElevationSplit};
pub use error::{SapError, SapResult};
pub use gravity::{apply_gravity, canonical_heights, is_grounded};
pub use instance::Instance;
pub use network::PathNetwork;
pub use obs::{
    chrome_trace, Aggregator, Histogram, ObsNode, TenantObs, TraceClock, OBS_SCHEMA_VERSION,
};
pub use parallel::{join, join3, join3_isolated, map_reduce_isolated, parallel_map, run_isolated};
pub use render::{render_solution, render_solution_svg};
pub use rmq::RangeMin;
pub use solution::{Placement, SapSolution, UfppSolution};
pub use stack::{lift, stack};
pub use stats::{instance_stats, solution_stats, InstanceStats, SolutionStats};
pub use task::{Span, Task};
pub use telemetry::{
    Recorder, Span as TelemetrySpan, SpanData, Telemetry, TELEMETRY_SCHEMA_VERSION,
};
pub use units::{Capacity, Demand, EdgeId, Height, Ratio, TaskId, Vertex, Weight};

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::classify::{classify_by_size, strata_by_bottleneck, SizeClass};
    pub use crate::error::{SapError, SapResult};
    pub use crate::gravity::{apply_gravity, canonical_heights};
    pub use crate::instance::Instance;
    pub use crate::network::PathNetwork;
    pub use crate::solution::{Placement, SapSolution, UfppSolution};
    pub use crate::task::{Span, Task};
    pub use crate::units::{Capacity, Demand, EdgeId, Height, Ratio, TaskId, Vertex, Weight};
}

//! The β-elevation split (Lemma 14, Fig. 6).
//!
//! A SAP solution for a class `J^{k,ℓ}` is *β-elevated* (with respect to
//! `k`) when every height is at least `β·2^k`. Lemma 14: when every task is
//! `(1−2β)`-small, any feasible solution splits in linear time into **two**
//! β-elevated feasible solutions — the tasks already at height `≥ β·2^k`
//! stay put, the rest are lifted by exactly `β·2^k`. The lift is feasible
//! because a `(1−2β)`-small task below the threshold has head-room
//! `β·2^k` under every edge it uses (inequality (2) of the paper).
//!
//! The threshold `β·2^k` is passed in as an integer; the medium-task
//! algorithm guarantees integrality by scaling the instance by `2^q`
//! (where `β = 2^{-q}`) before calling this.

use crate::instance::Instance;
use crate::solution::{Placement, SapSolution};
use crate::units::Height;

/// The two β-elevated halves produced by [`elevation_split`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElevationSplit {
    /// Tasks originally below the threshold, lifted by the threshold.
    pub lifted: SapSolution,
    /// Tasks already at or above the threshold, unchanged.
    pub kept: SapSolution,
}

/// Splits `solution` at `threshold = β·2^k` per Lemma 14. Both returned
/// solutions have every height `≥ threshold`; together they select exactly
/// the tasks of `solution`. The caller guarantees the smallness condition
/// that makes the lifted half feasible (checked in debug builds).
#[must_use]
pub fn elevation_split(
    instance: &Instance,
    solution: &SapSolution,
    threshold: Height,
) -> ElevationSplit {
    let mut lifted = Vec::new();
    let mut kept = Vec::new();
    for p in &solution.placements {
        if p.height < threshold {
            lifted.push(Placement { task: p.task, height: p.height + threshold });
        } else {
            kept.push(*p);
        }
    }
    let split = ElevationSplit {
        lifted: SapSolution::new(lifted),
        kept: SapSolution::new(kept),
    };
    debug_assert!(
        split.lifted.validate(instance).is_ok(),
        "lifted half must stay feasible (tasks must be (1-2β)-small)"
    );
    debug_assert!(split.kept.validate(instance).is_ok());
    split
}

/// True when every height of `solution` is at least `threshold`
/// (β-elevation, Definition 1).
pub fn is_elevated(solution: &SapSolution, threshold: Height) -> bool {
    solution.placements.iter().all(|p| p.height >= threshold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::PathNetwork;
    use crate::task::Task;

    /// Fig. 6 setting: k with 2^k = 8, β = 1/4 ⇒ threshold 2.
    /// Tasks are (1 − 2β) = ½-small: d ≤ b/2.
    fn instance() -> Instance {
        let net = PathNetwork::uniform(4, 8).unwrap();
        let tasks = vec![
            Task::of(0, 2, 3, 1),
            Task::of(1, 4, 2, 1),
            Task::of(2, 4, 4, 1),
            Task::of(0, 1, 1, 1),
        ];
        Instance::new(net, tasks).unwrap()
    }

    #[test]
    fn split_partitions_and_elevates() {
        let inst = instance();
        // Heights: task 0 at 0 (below), task 1 at 3 (above), task 2 at...
        // task 2 overlaps task 1 (edges 2,3): place at... task 1 occupies
        // [3,5) on edges 1..4; task 2 occupies [5, 9) > cap. Use height 4?
        // overlap. Keep it simple: tasks 0 (h=0), 3 (h=3), 1 (h=5).
        let sol = SapSolution::from_pairs([(0, 0), (3, 3), (1, 5)]);
        sol.validate(&inst).unwrap();
        let split = elevation_split(&inst, &sol, 2);
        assert_eq!(split.lifted.len(), 1);
        assert_eq!(split.lifted.height_of(0), Some(2));
        assert_eq!(split.kept.len(), 2);
        assert!(is_elevated(&split.lifted, 2));
        assert!(is_elevated(&split.kept, 2));
        split.lifted.validate(&inst).unwrap();
        split.kept.validate(&inst).unwrap();
    }

    #[test]
    fn boundary_height_is_kept_not_lifted() {
        let inst = instance();
        let sol = SapSolution::from_pairs([(0, 2)]);
        let split = elevation_split(&inst, &sol, 2);
        assert!(split.lifted.is_empty());
        assert_eq!(split.kept.height_of(0), Some(2));
    }

    #[test]
    fn empty_solution_splits_empty() {
        let inst = instance();
        let split = elevation_split(&inst, &SapSolution::empty(), 5);
        assert!(split.lifted.is_empty() && split.kept.is_empty());
    }

    #[test]
    fn is_elevated_checks_every_placement() {
        let sol = SapSolution::from_pairs([(0, 2), (1, 5)]);
        assert!(is_elevated(&sol, 2));
        assert!(!is_elevated(&sol, 3));
        assert!(is_elevated(&SapSolution::empty(), 100));
    }
}

//! Task size classification and bottleneck strata (Fig. 2, §3, §4.2, §5.1).
//!
//! The paper's master algorithm (Theorem 4) splits the task set three ways:
//!
//! * **small** tasks are δ-small: `d_j ≤ δ·b(j)`;
//! * **large** tasks are δ′-large: `d_j > δ′·b(j)` (the paper uses
//!   δ′ = 1/k with k = 2);
//! * **medium** tasks are everything in between (δ-large and δ′-small).
//!
//! Two stratifications by bottleneck are used by the sub-algorithms:
//!
//! * the strip strata `J_t = { j : 2^t ≤ b(j) < 2^{t+1} }` (Algorithm
//!   Strip-Pack, §4.2);
//! * the sliding classes `J^{k,ℓ} = { j : 2^k ≤ b(j) < 2^{k+ℓ} }`
//!   (Algorithm AlmostUniform, §5.1) — each task lies in exactly `ℓ` of
//!   them.

use crate::instance::Instance;
use crate::units::{Ratio, TaskId};

/// Which of the three regimes a task belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SizeClass {
    /// `d_j ≤ δ_small · b(j)`.
    Small,
    /// `δ_small · b(j) < d_j ≤ δ_large · b(j)`.
    Medium,
    /// `d_j > δ_large · b(j)`.
    Large,
}

/// The three-way partition of task ids produced by [`classify_by_size`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClassifiedTasks {
    /// δ-small task ids.
    pub small: Vec<TaskId>,
    /// Medium (δ-large and δ′-small) task ids.
    pub medium: Vec<TaskId>,
    /// δ′-large task ids.
    pub large: Vec<TaskId>,
}

impl ClassifiedTasks {
    /// Total number of classified tasks.
    pub fn len(&self) -> usize {
        self.small.len() + self.medium.len() + self.large.len()
    }

    /// True when no tasks were classified.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// True when task `j` is δ-small: `d_j ≤ δ·b(j)` (exact arithmetic).
pub fn is_delta_small(instance: &Instance, j: TaskId, delta: Ratio) -> bool {
    delta.le_scaled(instance.demand(j), instance.bottleneck(j))
}

/// True when task `j` is δ-large: `d_j > δ·b(j)`.
pub fn is_delta_large(instance: &Instance, j: TaskId, delta: Ratio) -> bool {
    !is_delta_small(instance, j, delta)
}

/// Classifies every task of `instance` into small / medium / large.
///
/// # Panics
///
/// Panics when `delta_small > delta_large` (the regimes would overlap).
pub fn classify_by_size(
    instance: &Instance,
    delta_small: Ratio,
    delta_large: Ratio,
) -> ClassifiedTasks {
    assert!(
        delta_small.le(delta_large),
        "small threshold must not exceed large threshold"
    );
    let mut out = ClassifiedTasks::default();
    for j in 0..instance.num_tasks() {
        if is_delta_small(instance, j, delta_small) {
            out.small.push(j);
        } else if is_delta_small(instance, j, delta_large) {
            out.medium.push(j);
        } else {
            out.large.push(j);
        }
    }
    out
}

/// The strip stratum index of a task: the `t` with `2^t ≤ b(j) < 2^{t+1}`.
pub fn stratum_of(instance: &Instance, j: TaskId) -> u32 {
    let b = instance.bottleneck(j);
    debug_assert!(b >= 1, "tasks with zero bottleneck cannot be scheduled");
    b.ilog2()
}

/// Groups task ids by stratum `J_t = { j : 2^t ≤ b(j) < 2^{t+1} }`,
/// returning `(t, ids)` pairs sorted by `t`. Only non-empty strata are
/// returned (there are at most `O(n)` of them — §4.2).
pub fn strata_by_bottleneck(instance: &Instance, ids: &[TaskId]) -> Vec<(u32, Vec<TaskId>)> {
    let mut map: std::collections::BTreeMap<u32, Vec<TaskId>> = std::collections::BTreeMap::new();
    for &j in ids {
        map.entry(stratum_of(instance, j)).or_default().push(j);
    }
    map.into_iter().collect()
}

/// Groups task ids into the sliding classes
/// `J^{k,ℓ} = { j : 2^k ≤ b(j) < 2^{k+ℓ} }` for all `k` making the class
/// non-empty, returning `(k, ids)` pairs sorted by `k`. A task with stratum
/// `t` belongs to `J^{k,ℓ}` for `k ∈ {t−ℓ+1, …, t}` (clamped at 0), i.e. to
/// exactly `ℓ` classes when `t ≥ ℓ−1`.
pub fn classes_k_ell(
    instance: &Instance,
    ids: &[TaskId],
    ell: u32,
) -> Vec<(u32, Vec<TaskId>)> {
    assert!(ell >= 1, "class width ℓ must be at least 1");
    let mut map: std::collections::BTreeMap<u32, Vec<TaskId>> = std::collections::BTreeMap::new();
    for &j in ids {
        let t = stratum_of(instance, j);
        let k_min = t.saturating_sub(ell - 1);
        for k in k_min..=t {
            map.entry(k).or_default().push(j);
        }
    }
    map.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::PathNetwork;
    use crate::task::Task;

    fn instance() -> Instance {
        let net = PathNetwork::new(vec![100, 10, 100]).unwrap();
        let tasks = vec![
            Task::of(0, 1, 5, 1),   // b=100, d=5  -> small at δ=1/10
            Task::of(0, 3, 5, 1),   // b=10,  d=5  -> large at δ'=1/4
            Task::of(2, 3, 30, 1),  // b=100, d=30 -> medium (δ=1/10, δ'=1/2)
            Task::of(1, 2, 10, 1),  // b=10,  d=10 -> large
        ];
        Instance::new(net, tasks).unwrap()
    }

    #[test]
    fn delta_small_boundary_is_inclusive() {
        let inst = instance();
        // d = 5, b = 100: δ = 1/20 ⇒ 5 ≤ 100/20 exactly.
        assert!(is_delta_small(&inst, 0, Ratio::new(1, 20)));
        assert!(!is_delta_small(&inst, 0, Ratio::new(1, 21)));
        assert!(is_delta_large(&inst, 0, Ratio::new(1, 21)));
    }

    #[test]
    fn three_way_classification() {
        let inst = instance();
        let c = classify_by_size(&inst, Ratio::new(1, 10), Ratio::new(1, 2));
        assert_eq!(c.small, vec![0]);
        // Task 1: d=5, b=10 — not 1/10-small, but 1/2-small ⇒ medium.
        assert_eq!(c.medium, vec![1, 2]);
        assert_eq!(c.large, vec![3]);
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
    }

    #[test]
    #[should_panic(expected = "small threshold")]
    fn inverted_thresholds_panic() {
        let inst = instance();
        classify_by_size(&inst, Ratio::new(1, 2), Ratio::new(1, 10));
    }

    #[test]
    fn strata() {
        let inst = instance();
        // b values: 100 (t=6), 10 (t=3), 100 (t=6), 10 (t=3).
        assert_eq!(stratum_of(&inst, 0), 6);
        assert_eq!(stratum_of(&inst, 1), 3);
        let strata = strata_by_bottleneck(&inst, &inst.all_ids());
        assert_eq!(strata, vec![(3, vec![1, 3]), (6, vec![0, 2])]);
    }

    #[test]
    fn classes_cover_each_task_ell_times() {
        let inst = instance();
        let ell = 3;
        let classes = classes_k_ell(&inst, &inst.all_ids(), ell);
        let mut count = vec![0usize; inst.num_tasks()];
        for (k, ids) in &classes {
            for &j in ids {
                count[j] += 1;
                let b = inst.bottleneck(j);
                assert!(b >= 1u64 << k, "b(j) ≥ 2^k");
                assert!(b < 1u64 << (k + ell), "b(j) < 2^(k+ℓ)");
            }
        }
        for (j, &c) in count.iter().enumerate() {
            let t = stratum_of(&inst, j);
            let expected = (t.min(ell - 1) + 1) as usize; // clamped at k = 0
            assert_eq!(c, expected, "task {j}");
        }
    }

    #[test]
    fn classes_with_width_one_equal_strata() {
        let inst = instance();
        let classes = classes_k_ell(&inst, &inst.all_ids(), 1);
        let strata = strata_by_bottleneck(&inst, &inst.all_ids());
        assert_eq!(classes, strata);
    }
}

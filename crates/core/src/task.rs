//! Tasks and spans.

use crate::error::{SapError, SapResult};
use crate::units::{Demand, EdgeId, Weight};

/// A half-open, non-empty range of edges `lo .. hi` — the sub-path `I_j`
/// of a task. In the paper's notation a task runs from vertex `s_j` to
/// vertex `t_j`; here `lo = s_j` and `hi = t_j` with `lo < hi`, and the
/// task uses edges `lo, lo+1, …, hi−1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Span {
    /// First edge used.
    pub lo: EdgeId,
    /// One past the last edge used.
    pub hi: EdgeId,
}

impl Span {
    /// Creates a span; `lo < hi` is required.
    pub fn new(lo: EdgeId, hi: EdgeId) -> Option<Self> {
        (lo < hi).then_some(Span { lo, hi })
    }

    /// Number of edges used.
    #[inline]
    pub fn len(&self) -> usize {
        self.hi - self.lo
    }

    /// Spans are never empty; kept for API symmetry.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// True when the two sub-paths share an edge (`I_i ∩ I_j ≠ ∅`).
    #[inline]
    pub fn overlaps(&self, other: Span) -> bool {
        self.lo < other.hi && other.lo < self.hi
    }

    /// True when `self` contains edge `e`.
    #[inline]
    pub fn contains(&self, e: EdgeId) -> bool {
        self.lo <= e && e < self.hi
    }

    /// True when `self`'s edge set contains `other`'s.
    #[inline]
    pub fn contains_span(&self, other: Span) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Intersection of the two edge ranges, if non-empty.
    pub fn intersect(&self, other: Span) -> Option<Span> {
        Span::new(self.lo.max(other.lo), self.hi.min(other.hi))
    }

    /// Iterates over the edges used.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> {
        self.lo..self.hi
    }
}

/// A task `j = (I_j, d_j, w_j)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Task {
    /// The sub-path `I_j` of edges the task uses.
    pub span: Span,
    /// Demand `d_j` — the height of the task's rectangle.
    pub demand: Demand,
    /// Weight `w_j` — the profit of selecting the task.
    pub weight: Weight,
}

impl Task {
    /// Creates a task over edges `lo .. hi`.
    ///
    /// # Errors
    ///
    /// Rejects empty spans and zero demands (a zero-demand task is degenerate:
    /// it occupies no space, and the paper's height condition (2) would let
    /// it coincide with any other task).
    pub fn new(lo: EdgeId, hi: EdgeId, demand: Demand, weight: Weight) -> SapResult<Self> {
        let span = Span::new(lo, hi).ok_or(SapError::InvalidSpan { task: usize::MAX })?;
        if demand == 0 {
            return Err(SapError::ZeroDemand { task: usize::MAX });
        }
        Ok(Task { span, demand, weight })
    }

    /// Convenience constructor that panics on invalid input — for tests,
    /// generators and examples where inputs are static.
    #[must_use]
    pub fn of(lo: EdgeId, hi: EdgeId, demand: Demand, weight: Weight) -> Self {
        // lint:allow(p1) — documented panicking constructor for static task
        // literals in tests and generators; fallible code uses `Task::new`.
        Self::new(lo, hi, demand, weight).expect("valid task literal")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_basics() {
        let s = Span::new(2, 5).unwrap();
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert!(s.contains(2) && s.contains(4) && !s.contains(5) && !s.contains(1));
        assert_eq!(s.edges().collect::<Vec<_>>(), vec![2, 3, 4]);
        assert!(Span::new(3, 3).is_none());
        assert!(Span::new(4, 3).is_none());
    }

    #[test]
    fn span_overlap_is_symmetric_and_correct() {
        let a = Span::new(0, 3).unwrap();
        let b = Span::new(2, 5).unwrap();
        let c = Span::new(3, 4).unwrap();
        assert!(a.overlaps(b) && b.overlaps(a));
        assert!(!a.overlaps(c) && !c.overlaps(a));
        assert!(b.overlaps(c));
        assert_eq!(a.intersect(b), Span::new(2, 3));
        assert_eq!(a.intersect(c), None);
    }

    #[test]
    fn span_containment() {
        let outer = Span::new(1, 6).unwrap();
        let inner = Span::new(2, 4).unwrap();
        assert!(outer.contains_span(inner));
        assert!(!inner.contains_span(outer));
        assert!(outer.contains_span(outer));
    }

    #[test]
    fn task_construction() {
        let t = Task::of(0, 2, 3, 10);
        assert_eq!(t.span.len(), 2);
        assert!(Task::new(1, 1, 3, 10).is_err());
        assert!(Task::new(0, 2, 0, 10).is_err());
        assert!(Task::new(0, 2, 3, 0).is_ok(), "zero weight is allowed");
    }
}

//! Solution types and exact validators.

use std::collections::BTreeMap;

use crate::error::{SapError, SapResult};
use crate::instance::Instance;
use crate::units::{Height, TaskId, Weight};

/// A selected task together with its assigned height.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Placement {
    /// Id of the selected task.
    pub task: TaskId,
    /// Height `h(j)` — the bottom ordinate of the task's rectangle.
    pub height: Height,
}

/// A feasible-candidate UFPP solution: a set of task ids.
///
/// Use [`UfppSolution::validate`] to check per-edge loads.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UfppSolution {
    /// Selected task ids (no duplicates).
    pub tasks: Vec<TaskId>,
}

impl UfppSolution {
    /// Creates a UFPP solution from task ids.
    pub fn new(tasks: Vec<TaskId>) -> Self {
        UfppSolution { tasks }
    }

    /// The empty solution.
    pub fn empty() -> Self {
        UfppSolution { tasks: Vec::new() }
    }

    /// Number of selected tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when no task is selected.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Total weight of the solution under `instance`.
    pub fn weight(&self, instance: &Instance) -> Weight {
        instance.total_weight(&self.tasks)
    }

    /// Validates the solution: ids in range, no duplicates, and
    /// `d(S(e)) ≤ c_e` for every edge `e`.
    pub fn validate(&self, instance: &Instance) -> SapResult<()> {
        check_ids(&self.tasks, instance)?;
        let loads = instance.loads(&self.tasks);
        for (e, &load) in loads.iter().enumerate() {
            let cap = instance.network().capacity(e);
            if load > cap {
                return Err(SapError::LoadExceedsCapacity { edge: e, load, capacity: cap });
            }
        }
        Ok(())
    }

    /// Validates against an arbitrary uniform bound `B` instead of the edge
    /// capacities — `B`-packability in the paper's terminology (§2).
    pub fn validate_packable(&self, instance: &Instance, bound: u64) -> SapResult<()> {
        check_ids(&self.tasks, instance)?;
        let loads = instance.loads(&self.tasks);
        for (e, &load) in loads.iter().enumerate() {
            if load > bound {
                return Err(SapError::LoadExceedsCapacity { edge: e, load, capacity: bound });
            }
        }
        Ok(())
    }
}

/// A feasible-candidate SAP solution: a set of placements.
///
/// Use [`SapSolution::validate`] to check both feasibility conditions of the
/// paper's definition:
/// 1. `h(j) + d_j ≤ c_e` for every `e ∈ I_j`;
/// 2. rectangles of overlapping tasks are vertically disjoint.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SapSolution {
    /// The placements (no duplicate task ids).
    pub placements: Vec<Placement>,
}

impl SapSolution {
    /// Creates a SAP solution from placements.
    pub fn new(placements: Vec<Placement>) -> Self {
        SapSolution { placements }
    }

    /// The empty solution.
    pub fn empty() -> Self {
        SapSolution { placements: Vec::new() }
    }

    /// Builds a solution from `(task, height)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (TaskId, Height)>) -> Self {
        SapSolution {
            placements: pairs
                .into_iter()
                .map(|(task, height)| Placement { task, height })
                .collect(),
        }
    }

    /// Number of selected tasks.
    pub fn len(&self) -> usize {
        self.placements.len()
    }

    /// True when no task is selected.
    pub fn is_empty(&self) -> bool {
        self.placements.is_empty()
    }

    /// Ids of the selected tasks.
    pub fn task_ids(&self) -> Vec<TaskId> {
        self.placements.iter().map(|p| p.task).collect()
    }

    /// Height assigned to `task`, if selected.
    pub fn height_of(&self, task: TaskId) -> Option<Height> {
        self.placements.iter().find(|p| p.task == task).map(|p| p.height)
    }

    /// Total weight of the solution under `instance`.
    pub fn weight(&self, instance: &Instance) -> Weight {
        self.placements.iter().map(|p| instance.weight(p.task)).sum()
    }

    /// Forgets the heights, yielding the induced UFPP solution. (Every SAP
    /// solution induces a UFPP solution; the converse fails — Fig. 1.)
    pub fn to_ufpp(&self) -> UfppSolution {
        UfppSolution::new(self.task_ids())
    }

    /// Per-edge makespan `μ_h(S(e)) = max_{j ∈ S(e)} (h(j) + d_j)`
    /// (0 on edges used by no selected task).
    pub fn makespans(&self, instance: &Instance) -> Vec<u64> {
        let mut ms = vec![0u64; instance.num_edges()];
        for p in &self.placements {
            let t = instance.task(p.task);
            let top = p.height + t.demand;
            for e in t.span.edges() {
                ms[e] = ms[e].max(top);
            }
        }
        ms
    }

    /// Maximum makespan over all edges.
    pub fn max_makespan(&self, instance: &Instance) -> u64 {
        self.placements
            .iter()
            .map(|p| p.height + instance.demand(p.task))
            .max()
            .unwrap_or(0)
    }

    /// Validates the two SAP feasibility conditions exactly.
    ///
    /// Runs a left-to-right sweep over edges maintaining the active set of
    /// rectangles ordered by height; disjointness is checked against the
    /// vertical neighbours on insertion, which is sound because the active
    /// intervals are pairwise disjoint by induction. O(n log n + total span
    /// length) time.
    pub fn validate(&self, instance: &Instance) -> SapResult<()> {
        self.validate_with_bound(instance, None)
    }

    /// Validates condition (2) plus `h(j) + d_j ≤ min(bound, c_e)`;
    /// with `bound = Some(B)` this checks `B`-packability (§2) on top of
    /// feasibility.
    pub fn validate_packable(&self, instance: &Instance, bound: u64) -> SapResult<()> {
        self.validate_with_bound(instance, Some(bound))
    }

    fn validate_with_bound(&self, instance: &Instance, bound: Option<u64>) -> SapResult<()> {
        let ids = self.task_ids();
        check_ids(&ids, instance)?;

        // Condition 1: under capacity along the whole span — equivalently
        // under the bottleneck — and optionally under `bound`.
        for p in &self.placements {
            let t = instance.task(p.task);
            let top = p
                .height
                .checked_add(t.demand)
                .ok_or(SapError::Overflow)?;
            if top > instance.bottleneck(p.task) {
                let edge = instance.network().bottleneck_edge(t.span);
                return Err(SapError::PlacementAboveCapacity { task: p.task, edge });
            }
            if let Some(b) = bound {
                if top > b {
                    return Err(SapError::PlacementAboveCapacity { task: p.task, edge: t.span.lo });
                }
            }
        }

        // Condition 2: sweep line over edges; active set ordered by bottom.
        let mut events: Vec<(usize, bool, usize)> = Vec::with_capacity(2 * self.placements.len());
        for (idx, p) in self.placements.iter().enumerate() {
            let span = instance.span(p.task);
            events.push((span.lo, false, idx)); // false = insert
            events.push((span.hi, true, idx)); // true = remove (removals first at ties)
        }
        // At equal coordinate, removals (true) must precede insertions
        // (false): spans are half-open so a task ending at x does not
        // conflict with one starting at x. `true > false`, so sort removals
        // first by comparing with reversed bool.
        events.sort_by_key(|&(x, is_insert, idx)| (x, !is_insert as u8, idx));

        let mut active: BTreeMap<(Height, usize), Height> = BTreeMap::new(); // (bottom, idx) -> top
        for (_, ev_remove, idx) in events {
            let p = self.placements[idx];
            let bottom = p.height;
            let top = bottom + instance.demand(p.task);
            if ev_remove {
                active.remove(&(bottom, idx));
            } else {
                // Check the neighbour below and above in the vertical order.
                if let Some(((_, below_idx), below_top)) =
                    active.range(..(bottom, idx)).next_back()
                {
                    if *below_top > bottom {
                        return Err(SapError::OverlappingPlacements {
                            a: self.placements[*below_idx].task,
                            b: p.task,
                        });
                    }
                }
                if let Some(((above_bottom, above_idx), _)) =
                    active.range((bottom, idx)..).next()
                {
                    if top > *above_bottom {
                        return Err(SapError::OverlappingPlacements {
                            a: p.task,
                            b: self.placements[*above_idx].task,
                        });
                    }
                }
                active.insert((bottom, idx), top);
            }
        }
        Ok(())
    }
}

fn check_ids(ids: &[TaskId], instance: &Instance) -> SapResult<()> {
    let n = instance.num_tasks();
    let mut seen = vec![false; n];
    for &j in ids {
        if j >= n {
            return Err(SapError::UnknownTask { task: j });
        }
        if seen[j] {
            return Err(SapError::DuplicateTask { task: j });
        }
        seen[j] = true;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::PathNetwork;
    use crate::task::Task;

    fn instance() -> Instance {
        // Fig. 1a-like: capacities (1, 2, 1) scaled by 2 => (2, 4, 2).
        let net = PathNetwork::new(vec![2, 4, 2]).unwrap();
        let tasks = vec![
            Task::of(0, 2, 1, 1), // 0: left thick
            Task::of(1, 3, 1, 1), // 1: right thick
            Task::of(0, 3, 1, 1), // 2: full-width
            Task::of(1, 2, 2, 1), // 3: tall middle
        ];
        Instance::new(net, tasks).unwrap()
    }

    #[test]
    fn ufpp_validation() {
        let inst = instance();
        UfppSolution::new(vec![0, 1, 3]).validate(&inst).unwrap();
        let err = UfppSolution::new(vec![0, 1, 2, 3]).validate(&inst).unwrap_err();
        assert!(matches!(err, SapError::LoadExceedsCapacity { .. }));
        let err = UfppSolution::new(vec![0, 0]).validate(&inst).unwrap_err();
        assert_eq!(err, SapError::DuplicateTask { task: 0 });
        let err = UfppSolution::new(vec![9]).validate(&inst).unwrap_err();
        assert_eq!(err, SapError::UnknownTask { task: 9 });
    }

    #[test]
    fn ufpp_packable_bound() {
        let inst = instance();
        let sol = UfppSolution::new(vec![0, 1]);
        sol.validate_packable(&inst, 2).unwrap();
        assert!(sol.validate_packable(&inst, 1).is_err());
    }

    #[test]
    fn sap_feasible_solution_validates() {
        let inst = instance();
        // Task 0 at 0, task 1 at 1 (they overlap on edge 1), task 3 at 2.
        let sol = SapSolution::from_pairs([(0, 0), (1, 1), (3, 2)]);
        sol.validate(&inst).unwrap();
        assert_eq!(sol.weight(&inst), 3);
        assert_eq!(sol.max_makespan(&inst), 4);
        assert_eq!(sol.makespans(&inst), vec![1, 4, 2]);
    }

    #[test]
    fn sap_rejects_capacity_violation() {
        let inst = instance();
        let sol = SapSolution::from_pairs([(0, 2)]); // top = 3 > c_0 = 2
        let err = sol.validate(&inst).unwrap_err();
        assert!(matches!(err, SapError::PlacementAboveCapacity { task: 0, .. }));
    }

    #[test]
    fn sap_rejects_overlap() {
        let inst = instance();
        // Tasks 0 and 1 overlap on edge 1; same height ⇒ rectangles collide.
        let sol = SapSolution::from_pairs([(0, 0), (1, 0)]);
        let err = sol.validate(&inst).unwrap_err();
        assert!(matches!(err, SapError::OverlappingPlacements { .. }));
    }

    #[test]
    fn sap_touching_rectangles_are_fine() {
        let inst = instance();
        // Task 3 spans edge 1 with demand 2 at height 0; tasks 0 and 1 sit
        // exactly on top at height 2... but c_0 = 2, so place only task 1
        // (c_2 = 2 fails too). Use task 2 at height... simpler: stack tasks
        // 0 and 1 touching at height boundary on edge 1.
        let sol = SapSolution::from_pairs([(0, 0), (1, 1)]);
        sol.validate(&inst).unwrap();
    }

    #[test]
    fn horizontally_disjoint_tasks_may_share_heights() {
        let net = PathNetwork::uniform(4, 2).unwrap();
        let tasks = vec![Task::of(0, 2, 2, 1), Task::of(2, 4, 2, 1)];
        let inst = Instance::new(net, tasks).unwrap();
        // Half-open spans: task 0 uses edges {0,1}, task 1 uses {2,3}.
        SapSolution::from_pairs([(0, 0), (1, 0)]).validate(&inst).unwrap();
    }

    #[test]
    fn sap_to_ufpp_projection() {
        let inst = instance();
        let sol = SapSolution::from_pairs([(0, 0), (1, 1)]);
        let ufpp = sol.to_ufpp();
        assert_eq!(ufpp.tasks, vec![0, 1]);
        ufpp.validate(&inst).unwrap();
    }

    #[test]
    fn sap_packable_bound() {
        let inst = instance();
        let sol = SapSolution::from_pairs([(0, 0), (1, 1)]);
        sol.validate_packable(&inst, 2).unwrap();
        assert!(sol.validate_packable(&inst, 1).is_err());
    }
}

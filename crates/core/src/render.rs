//! ASCII rendering of SAP solutions — used by the examples to reproduce
//! the look of the paper's figures (rectangles under a capacity profile).

use crate::instance::Instance;
use crate::solution::SapSolution;

/// Renders `solution` as an ASCII picture: columns are edges, rows are
/// height units (top row = highest). Cells covered by a task show a label
/// derived from the task id, free space under the capacity shows `.`, and
/// space above an edge's capacity shows ` `. Pictures taller than
/// `max_rows` are vertically scaled by an integer factor (a scaled cell
/// shows the task covering the cell's bottom unit).
#[must_use]
pub fn render_solution(instance: &Instance, solution: &SapSolution, max_rows: usize) -> String {
    let m = instance.num_edges();
    let top = instance.network().max_capacity();
    let scale = if max_rows == 0 {
        1
    } else {
        (top as usize).div_ceil(max_rows).max(1) as u64
    };
    let rows = (top / scale.max(1)).max(1);

    // Label for each task: letters, then digits, then '#'.
    let label = |j: usize| -> char {
        const ALPHABET: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
        if j < ALPHABET.len() {
            ALPHABET[j] as char
        } else {
            '#'
        }
    };

    let mut out = String::new();
    for row in (0..rows).rev() {
        let y = row * scale; // bottom ordinate of this display row
        for e in 0..m {
            let cap = instance.network().capacity(e);
            let ch = if y >= cap {
                ' '
            } else {
                let mut cell = '.';
                for p in &solution.placements {
                    let t = instance.task(p.task);
                    if t.span.contains(e) && p.height <= y && y < p.height + t.demand {
                        cell = label(p.task);
                        break;
                    }
                }
                cell
            };
            out.push(ch);
            out.push(ch); // double-width cells read better
        }
        out.push('\n');
    }
    // Baseline and edge ruler.
    out.push_str(&"--".repeat(m));
    out.push('\n');
    for e in 0..m {
        let s = format!("{e:<2}");
        out.push_str(&s[..2]);
    }
    out.push('\n');
    out
}

/// Renders `solution` as a standalone SVG document: the capacity profile
/// as a grey silhouette, each placed task as a coloured rectangle with
/// its id. `unit` is the pixel size of one edge/height unit (heights are
/// auto-scaled when the tallest capacity exceeds 512 units).
#[must_use]
pub fn render_solution_svg(instance: &Instance, solution: &SapSolution, unit: f64) -> String {
    let m = instance.num_edges();
    let top = instance.network().max_capacity().max(1);
    let yscale = if top > 512 { 512.0 / top as f64 } else { 1.0 };
    let width = m as f64 * unit;
    let height = top as f64 * yscale * unit;
    let y_of = |h: u64| height - h as f64 * yscale * unit;

    let mut svg = String::new();
    svg.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" \
         viewBox=\"0 0 {width:.2} {height:.2}\">\n",
        width.ceil(),
        height.ceil()
    ));
    // Capacity silhouette.
    for e in 0..m {
        let cap = instance.network().capacity(e);
        svg.push_str(&format!(
            "  <rect x=\"{:.2}\" y=\"{:.2}\" width=\"{unit:.2}\" height=\"{:.2}\" \
             fill=\"#e8e8e8\" stroke=\"#bbbbbb\" stroke-width=\"0.5\"/>\n",
            e as f64 * unit,
            y_of(cap),
            cap as f64 * yscale * unit,
        ));
    }
    // Tasks.
    const PALETTE: [&str; 8] = [
        "#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#b07aa1", "#76b7b2", "#edc948", "#9c755f",
    ];
    for p in &solution.placements {
        let t = instance.task(p.task);
        let x = t.span.lo as f64 * unit;
        let w = t.span.len() as f64 * unit;
        let h = t.demand as f64 * yscale * unit;
        let y = y_of(p.height + t.demand);
        let color = PALETTE[p.task % PALETTE.len()];
        svg.push_str(&format!(
            "  <rect x=\"{x:.2}\" y=\"{y:.2}\" width=\"{w:.2}\" height=\"{h:.2}\" \
             fill=\"{color}\" fill-opacity=\"0.85\" stroke=\"#333333\" stroke-width=\"0.6\"/>\n"
        ));
        if w >= 14.0 && h >= 10.0 {
            svg.push_str(&format!(
                "  <text x=\"{:.2}\" y=\"{:.2}\" font-size=\"{:.1}\" fill=\"#ffffff\" \
                 font-family=\"monospace\">{}</text>\n",
                x + 2.0,
                y + h / 2.0 + 3.0,
                (h / 2.0).min(12.0).max(7.0),
                p.task
            ));
        }
    }
    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::PathNetwork;
    use crate::task::Task;

    #[test]
    fn renders_rectangles_and_capacity_profile() {
        let net = PathNetwork::new(vec![2, 3, 1]).unwrap();
        let tasks = vec![Task::of(0, 2, 2, 1), Task::of(2, 3, 1, 1)];
        let inst = Instance::new(net, tasks).unwrap();
        let sol = SapSolution::from_pairs([(0, 0), (1, 0)]);
        let pic = render_solution(&inst, &sol, 10);
        let lines: Vec<&str> = pic.lines().collect();
        // 3 height rows + ruler rows.
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[0], "  ..  "); // only edge 1 reaches height 2
        assert_eq!(lines[1], "AAAA  ");
        assert_eq!(lines[2], "AAAABB");
        assert_eq!(lines[3], "------");
    }

    #[test]
    fn tall_instances_are_scaled() {
        let net = PathNetwork::uniform(2, 1000).unwrap();
        let inst = Instance::new(net, vec![Task::of(0, 2, 500, 1)]).unwrap();
        let sol = SapSolution::from_pairs([(0, 0)]);
        let pic = render_solution(&inst, &sol, 10);
        assert!(pic.lines().count() <= 12);
        assert!(pic.contains('A'));
    }

    #[test]
    fn empty_solution_renders_dots() {
        let net = PathNetwork::uniform(3, 2).unwrap();
        let inst = Instance::new(net, vec![]).unwrap();
        let pic = render_solution(&inst, &SapSolution::empty(), 10);
        assert!(pic.contains("......"));
        assert!(!pic.contains('A'));
    }

    #[test]
    fn svg_has_profile_and_task_rects() {
        let net = PathNetwork::new(vec![2, 3, 1]).unwrap();
        let tasks = vec![Task::of(0, 2, 2, 1), Task::of(2, 3, 1, 1)];
        let inst = Instance::new(net, tasks).unwrap();
        let sol = SapSolution::from_pairs([(0, 0), (1, 0)]);
        let svg = render_solution_svg(&inst, &sol, 20.0);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        // 3 capacity rects + 2 task rects.
        assert_eq!(svg.matches("<rect").count(), 5);
        assert!(svg.contains("#4e79a7"), "first palette colour used");
    }

    #[test]
    fn svg_scales_tall_instances() {
        let net = PathNetwork::uniform(2, 100_000).unwrap();
        let inst = Instance::new(net, vec![Task::of(0, 2, 50_000, 1)]).unwrap();
        let sol = SapSolution::from_pairs([(0, 0)]);
        let svg = render_solution_svg(&inst, &sol, 10.0);
        // Height capped by the 512-unit auto-scale.
        assert!(svg.contains("height=\"5120\""), "{}", &svg[..120]);
    }

    #[test]
    fn svg_empty_solution_is_valid() {
        let net = PathNetwork::uniform(3, 4).unwrap();
        let inst = Instance::new(net, vec![]).unwrap();
        let svg = render_solution_svg(&inst, &SapSolution::empty(), 10.0);
        assert_eq!(svg.matches("<rect").count(), 3);
    }
}

//! The LP relaxation (1) of UFPP.
//!
//! ```text
//!   max Σ w_j x_j   s.t.  Σ_{j ∈ S(e)} d_j x_j ≤ c_e  ∀e,   x ∈ [0,1]^J
//! ```

use lp_solver::{LpProblem, LpSolution};
use sap_core::{Instance, TaskId};

/// Builds the relaxation for the tasks `ids` of `instance`; variable `i`
/// of the LP corresponds to `ids[i]`.
///
/// The column store is built in one [`LpProblem::with_columns`] pass —
/// task spans stream straight into the CSC arrays with the exact
/// nonzero count reserved up front, so construction performs O(1)
/// allocations instead of one per task.
pub fn build_relaxation(instance: &Instance, ids: &[TaskId]) -> LpProblem {
    let rhs: Vec<f64> = instance.network().capacities().iter().map(|&c| c as f64).collect();
    let nnz: usize = ids.iter().map(|&j| instance.task(j).span.edges().count()).sum();
    LpProblem::with_columns(
        rhs,
        nnz,
        ids.iter().map(|&j| {
            let t = instance.task(j);
            (t.weight as f64, 1.0, t.span.edges().map(move |e| (e, t.demand as f64)))
        }),
    )
}

/// Solves the relaxation and returns `(solution, fractional optimum)`.
/// The value upper-bounds every integral UFPP (hence SAP) solution over
/// `ids` by weak duality — the paper's experiments use it as the OPT
/// stand-in on instances too large for exact search.
pub fn lp_upper_bound(instance: &Instance, ids: &[TaskId]) -> (LpSolution, f64) {
    let lp = build_relaxation(instance, ids);
    let sol = lp.solve(0);
    // Guard against round-off when used as an upper bound: prefer the dual
    // objective, which is a valid bound for any dual-feasible (y, μ).
    let bound = sol.dual_objective(&lp).max(sol.objective);
    (sol, bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sap_core::{PathNetwork, Task};

    #[test]
    fn relaxation_dominates_integral_solutions() {
        let net = PathNetwork::new(vec![4, 8, 4]).unwrap();
        let tasks = vec![
            Task::of(0, 2, 3, 6),
            Task::of(1, 3, 3, 5),
            Task::of(0, 3, 2, 4),
            Task::of(1, 2, 4, 3),
        ];
        let inst = Instance::new(net, tasks).unwrap();
        let ids = inst.all_ids();
        let (_, bound) = lp_upper_bound(&inst, &ids);
        // Brute force integral optimum.
        let mut best = 0u64;
        for mask in 0u32..16 {
            let sel: Vec<TaskId> = (0..4).filter(|&i| mask & (1 << i) != 0).collect();
            if sap_core::UfppSolution::new(sel.clone()).validate(&inst).is_ok() {
                best = best.max(inst.total_weight(&sel));
            }
        }
        assert!(bound + 1e-6 >= best as f64, "LP bound {bound} < OPT {best}");
    }

    #[test]
    fn relaxation_indexes_by_position() {
        let net = PathNetwork::uniform(2, 10).unwrap();
        let tasks = vec![Task::of(0, 1, 1, 1), Task::of(1, 2, 10, 99)];
        let inst = Instance::new(net, tasks).unwrap();
        let lp = build_relaxation(&inst, &[1]);
        assert_eq!(lp.num_vars(), 1);
        let sol = lp.solve(0);
        assert!((sol.objective - 99.0).abs() < 1e-9);
    }

    #[test]
    fn empty_task_set() {
        let net = PathNetwork::uniform(2, 10).unwrap();
        let inst = Instance::new(net, vec![]).unwrap();
        let (_, bound) = lp_upper_bound(&inst, &[]);
        assert_eq!(bound, 0.0);
    }
}

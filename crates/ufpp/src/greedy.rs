//! Greedy UFPP baselines for the comparison experiments (`BL` in
//! EXPERIMENTS.md): no approximation guarantee on paths, but fast and a
//! useful yardstick for "who wins where".

use sap_core::{Instance, TaskId, UfppSolution};

/// Greedy by decreasing weight: scan and keep whenever feasible.
pub fn greedy_by_weight(instance: &Instance, ids: &[TaskId]) -> UfppSolution {
    let mut order: Vec<TaskId> = ids.to_vec();
    order.sort_by_key(|&j| std::cmp::Reverse(instance.weight(j)));
    greedy_in_order(instance, &order)
}

/// Greedy by decreasing weight per unit of (demand × span length) — a
/// density heuristic that accounts for both dimensions of the rectangle.
pub fn greedy_by_density(instance: &Instance, ids: &[TaskId]) -> UfppSolution {
    let mut order: Vec<TaskId> = ids.to_vec();
    order.sort_by(|&a, &b| {
        let area =
            |j: TaskId| instance.demand(j) as u128 * instance.span(j).len() as u128;
        let lhs = instance.weight(a) as u128 * area(b);
        let rhs = instance.weight(b) as u128 * area(a);
        rhs.cmp(&lhs)
    });
    greedy_in_order(instance, &order)
}

fn greedy_in_order(instance: &Instance, order: &[TaskId]) -> UfppSolution {
    let net = instance.network();
    let mut loads = vec![0u64; instance.num_edges()];
    // Global high-water mark of the load profile. Together with the O(1)
    // sparse-table bottleneck it short-circuits the per-edge feasibility
    // scan in both directions: a task whose demand exceeds its span's
    // bottleneck can never fit (reject without scanning), and while
    // `max_load + demand` clears the bottleneck every edge trivially fits
    // (accept without scanning). Neither shortcut changes which tasks are
    // kept, so the output is byte-identical to the plain scan.
    let mut max_load = 0u64;
    let mut chosen = Vec::new();
    for &j in order {
        let t = instance.task(j);
        let bottleneck = net.bottleneck(t.span);
        if t.demand > bottleneck {
            continue;
        }
        let fits = max_load + t.demand <= bottleneck
            || t.span.edges().all(|e| loads[e] + t.demand <= net.capacity(e));
        if fits {
            for e in t.span.edges() {
                loads[e] += t.demand;
                max_load = max_load.max(loads[e]);
            }
            chosen.push(j);
        }
    }
    UfppSolution::new(chosen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sap_core::{PathNetwork, Task};

    #[test]
    fn greedy_solutions_are_feasible_and_maximal() {
        let net = PathNetwork::new(vec![5, 3, 5]).unwrap();
        let tasks = vec![
            Task::of(0, 3, 3, 10),
            Task::of(0, 1, 2, 2),
            Task::of(2, 3, 2, 2),
            Task::of(1, 2, 1, 1),
        ];
        let inst = Instance::new(net, tasks).unwrap();
        for sol in [
            greedy_by_weight(&inst, &inst.all_ids()),
            greedy_by_density(&inst, &inst.all_ids()),
        ] {
            sol.validate(&inst).unwrap();
            assert!(sol.tasks.contains(&0), "heaviest task always fits first");
        }
    }

    #[test]
    fn weight_greedy_can_be_beaten_by_density() {
        // One heavy long task blocks two light short ones whose sum wins.
        let net = PathNetwork::uniform(4, 2).unwrap();
        let tasks = vec![
            Task::of(0, 4, 2, 5), // heavy blocker
            Task::of(0, 2, 2, 3),
            Task::of(2, 4, 2, 3),
        ];
        let inst = Instance::new(net, tasks).unwrap();
        let by_w = greedy_by_weight(&inst, &inst.all_ids());
        assert_eq!(by_w.weight(&inst), 5);
        let by_d = greedy_by_density(&inst, &inst.all_ids());
        assert_eq!(by_d.weight(&inst), 6);
    }
}

//! A practical UFPP solver (no SAP contiguity): best of LP-guided
//! rounding against the true capacities, the greedy baselines, and
//! interval scheduling. Used by the *price of contiguity* experiment —
//! how much weight the SAP contiguity constraint costs relative to plain
//! UFPP on the same instance (the quantitative side of Fig. 1).

use sap_core::{Instance, TaskId, UfppSolution};

use crate::greedy::{greedy_by_density, greedy_by_weight};
use crate::local_ratio::weighted_interval_scheduling;
use crate::relax::build_relaxation;

/// Greedy rounding of the LP optimum against the **true per-edge
/// capacities** (not a uniform bound): scan tasks by decreasing
/// fractional value, keep whenever the loads stay within `c_e`.
pub fn round_lp_against_capacities(instance: &Instance, ids: &[TaskId]) -> UfppSolution {
    let lp = build_relaxation(instance, ids);
    let sol = lp.solve(0);
    let mut order: Vec<(usize, f64)> = sol
        .x
        .iter()
        .enumerate()
        .filter(|&(_, &x)| x > 1e-12)
        .map(|(i, &x)| (i, x))
        .collect();
    order.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let mut loads = vec![0u64; instance.num_edges()];
    let mut chosen = Vec::new();
    for (i, _) in order {
        let j = ids[i];
        let t = instance.task(j);
        if t
            .span
            .edges()
            .all(|e| loads[e] + t.demand <= instance.network().capacity(e))
        {
            for e in t.span.edges() {
                loads[e] += t.demand;
            }
            chosen.push(j);
        }
    }
    UfppSolution::new(chosen)
}

/// Best-of portfolio UFPP heuristic.
pub fn solve_ufpp_heuristic(instance: &Instance, ids: &[TaskId]) -> UfppSolution {
    let mut best = round_lp_against_capacities(instance, ids);
    for cand in [
        greedy_by_weight(instance, ids),
        greedy_by_density(instance, ids),
        UfppSolution::new(weighted_interval_scheduling(instance, ids)),
    ] {
        if cand.weight(instance) > best.weight(instance) {
            best = cand;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use sap_core::{PathNetwork, Task};

    fn instance(seed: u64, m: usize, n: usize) -> Instance {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let caps: Vec<u64> = (0..m).map(|_| 8 + next() % 56).collect();
        let net = PathNetwork::new(caps).unwrap();
        let tasks: Vec<Task> = (0..n)
            .map(|_| {
                let lo = (next() % m as u64) as usize;
                let hi = (lo + 1 + (next() % (m as u64 - lo as u64)) as usize).min(m);
                let b = net.bottleneck(sap_core::Span { lo, hi });
                Task::of(lo, hi, 1 + next() % b, 1 + next() % 20)
            })
            .collect();
        Instance::new(net, tasks).unwrap()
    }

    #[test]
    fn heuristic_feasible_and_dominates_components() {
        for seed in 0..8 {
            let inst = instance(seed, 8, 30);
            let ids = inst.all_ids();
            let best = solve_ufpp_heuristic(&inst, &ids);
            best.validate(&inst).unwrap();
            let lp = round_lp_against_capacities(&inst, &ids);
            lp.validate(&inst).unwrap();
            assert!(best.weight(&inst) >= lp.weight(&inst));
            assert!(best.weight(&inst) >= greedy_by_weight(&inst, &ids).weight(&inst));
        }
    }

    #[test]
    fn heuristic_close_to_exact_on_small_instances() {
        for seed in 0..8 {
            let inst = instance(seed + 50, 5, 12);
            let ids = inst.all_ids();
            let best = solve_ufpp_heuristic(&inst, &ids).weight(&inst);
            let opt = crate::exact::solve_exact(&inst, &ids).weight(&inst);
            assert!(best <= opt);
            assert!(2 * best >= opt, "seed {seed}: heuristic {best} vs opt {opt}");
        }
    }

    #[test]
    fn empty_input() {
        let inst = instance(0, 4, 5);
        assert!(solve_ufpp_heuristic(&inst, &[]).is_empty());
    }
}

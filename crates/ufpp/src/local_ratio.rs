//! Local-ratio algorithms.
//!
//! * [`strip_local_ratio`] — Algorithm **Strip** from the paper's appendix:
//!   for a δ-small instance with `b(j) ∈ [B, 2B)` it computes a
//!   `½B`-packable UFPP solution with `w(S) ≥ (1−4δ)/5 · OPT_SAP` —
//!   the `(5+ε)` alternative to the LP-rounding of §4.1.
//! * [`uniform_best_of`] — a classical local-ratio baseline for uniform
//!   capacities in the spirit of Bar-Noy et al. [5]: exact weighted
//!   interval scheduling on *wide* tasks (`2d > c`: overlapping wide tasks
//!   always conflict) combined with a local-ratio pass on *narrow* tasks;
//!   the heavier of the two is returned (Lemma 3 gives ratio
//!   `r_wide + r_narrow`).

use sap_core::{Instance, TaskId, UfppSolution};

const POS: f64 = 1e-9;

/// Algorithm Strip (paper appendix, Algorithm 3): local-ratio selection
/// producing a `⌊bound⌋`-packable solution where `bound = B/2` — the load
/// test `d(S'(e*)) ≤ B/2 − d_{j*}` is evaluated exactly as
/// `2·(d(S'(e*)) + d_{j*}) ≤ B`.
///
/// `ids` are the candidate tasks; `b` is the band base `B`.
pub fn strip_local_ratio(instance: &Instance, ids: &[TaskId], b: u64) -> UfppSolution {
    // Forward pass: peel off j* = min-right-endpoint positive task and
    // subtract the decomposed weight w1 from every overlapping task.
    let mut weight: Vec<f64> = ids.iter().map(|&j| instance.weight(j) as f64).collect();
    let mut alive: Vec<bool> = weight.iter().map(|&w| w > POS).collect();
    let mut stack: Vec<usize> = Vec::new(); // positions into `ids`

    loop {
        // j* = alive task with minimal right endpoint (ties: minimal id).
        let jstar = (0..ids.len())
            .filter(|&i| alive[i])
            .min_by_key(|&i| (instance.span(ids[i]).hi, ids[i]));
        let Some(istar) = jstar else { break };
        let wstar = weight[istar];
        let span_star = instance.span(ids[istar]);
        stack.push(istar);
        for i in 0..ids.len() {
            if !alive[i] || i == istar {
                continue;
            }
            if instance.span(ids[i]).overlaps(span_star) {
                // w1(i) = w(j*) · 2 d_i / B.
                weight[i] -= wstar * 2.0 * instance.demand(ids[i]) as f64 / b as f64;
                if weight[i] <= POS {
                    alive[i] = false;
                }
            }
        }
        weight[istar] = 0.0;
        alive[istar] = false;
    }

    // Reverse pass: add j* when the load on its rightmost edge leaves room:
    // d(S'(e*)) ≤ B/2 − d_{j*}  ⟺  2(d(S'(e*)) + d_{j*}) ≤ B.
    let mut loads = vec![0u64; instance.num_edges()];
    let mut chosen: Vec<TaskId> = Vec::new();
    for &i in stack.iter().rev() {
        let j = ids[i];
        let t = instance.task(j);
        let estar = t.span.hi - 1;
        if 2 * (loads[estar] + t.demand) <= b {
            for e in t.span.edges() {
                loads[e] += t.demand;
            }
            chosen.push(j);
        }
    }
    chosen.reverse();
    UfppSolution::new(chosen)
}

/// Exact weighted interval scheduling: maximum-weight set of pairwise
/// non-overlapping spans among `ids`. O(n log n).
pub fn weighted_interval_scheduling(instance: &Instance, ids: &[TaskId]) -> Vec<TaskId> {
    let mut order: Vec<TaskId> = ids.to_vec();
    order.sort_by_key(|&j| (instance.span(j).hi, instance.span(j).lo, j));
    let n = order.len();
    if n == 0 {
        return Vec::new();
    }
    // p[i] = number of tasks (prefix length) with hi ≤ lo_i.
    let his: Vec<usize> = order.iter().map(|&j| instance.span(j).hi).collect();
    let mut p = vec![0usize; n];
    for i in 0..n {
        let lo = instance.span(order[i]).lo;
        p[i] = his.partition_point(|&h| h <= lo);
    }
    let mut best = vec![0u64; n + 1];
    let mut take = vec![false; n];
    for i in 0..n {
        // lint:allow(p1) — p[i] = partition_point(..) ≤ n and best has n+1
        // slots, so every index is in bounds.
        let with = instance.weight(order[i]) + best[p[i]];
        if with > best[i] {
            best[i + 1] = with;
            take[i] = true;
        } else {
            best[i + 1] = best[i];
        }
    }
    let mut chosen = Vec::new();
    let mut i = n;
    while i > 0 {
        if take[i - 1] {
            chosen.push(order[i - 1]);
            i = p[i - 1];
        } else {
            i -= 1;
        }
    }
    chosen.reverse();
    chosen
}

/// Local-ratio pass for narrow tasks (`2d ≤ c`) on uniform capacity `c`:
/// ratio 3 (upper bound `w1(T) ≤ 3·w(j*)`, maximality gives
/// `w1(S) ≥ w(j*)`).
pub fn narrow_local_ratio(instance: &Instance, ids: &[TaskId], c: u64) -> UfppSolution {
    let mut weight: Vec<f64> = ids.iter().map(|&j| instance.weight(j) as f64).collect();
    let mut alive: Vec<bool> = weight.iter().map(|&w| w > POS).collect();
    let mut stack: Vec<usize> = Vec::new();
    loop {
        let jstar = (0..ids.len())
            .filter(|&i| alive[i])
            .min_by_key(|&i| (instance.span(ids[i]).hi, ids[i]));
        let Some(istar) = jstar else { break };
        let wstar = weight[istar];
        let span_star = instance.span(ids[istar]);
        stack.push(istar);
        for i in 0..ids.len() {
            if !alive[i] || i == istar {
                continue;
            }
            if instance.span(ids[i]).overlaps(span_star) {
                weight[i] -= wstar * 2.0 * instance.demand(ids[i]) as f64 / c as f64;
                if weight[i] <= POS {
                    alive[i] = false;
                }
            }
        }
        weight[istar] = 0.0;
        alive[istar] = false;
    }
    // Reverse maximal pass: add whenever feasibility (load ≤ c) survives.
    let mut loads = vec![0u64; instance.num_edges()];
    let mut chosen: Vec<TaskId> = Vec::new();
    for &i in stack.iter().rev() {
        let j = ids[i];
        let t = instance.task(j);
        if t.span.edges().all(|e| loads[e] + t.demand <= c) {
            for e in t.span.edges() {
                loads[e] += t.demand;
            }
            chosen.push(j);
        }
    }
    chosen.reverse();
    UfppSolution::new(chosen)
}

/// Baseline for UFPP with uniform capacity `c`: exact interval scheduling
/// on wide tasks (`2d > c`), local-ratio on narrow tasks, best of the two.
pub fn uniform_best_of(instance: &Instance, ids: &[TaskId], c: u64) -> UfppSolution {
    let (wide, narrow): (Vec<TaskId>, Vec<TaskId>) =
        ids.iter().partition(|&&j| 2 * instance.demand(j) > c);
    let wide_sol = UfppSolution::new(weighted_interval_scheduling(instance, &wide));
    let narrow_sol = narrow_local_ratio(instance, &narrow, c);
    if wide_sol.weight(instance) >= narrow_sol.weight(instance) {
        wide_sol
    } else {
        narrow_sol
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sap_core::{PathNetwork, Task};

    fn band_instance(seed: u64, m: usize, b: u64, n: usize, delta_inv: u64) -> Instance {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let caps: Vec<u64> = (0..m).map(|_| b + next() % b).collect();
        let net = PathNetwork::new(caps).unwrap();
        let mut tasks = Vec::new();
        for _ in 0..n {
            let lo = (next() % m as u64) as usize;
            let hi = (lo + 1 + (next() % (m as u64 - lo as u64)) as usize).min(m);
            let d = 1 + next() % (b / delta_inv).max(1);
            tasks.push(Task::of(lo, hi, d, 1 + next() % 30));
        }
        Instance::new(net, tasks).unwrap()
    }

    #[test]
    fn strip_output_is_half_b_packable() {
        for seed in 0..15 {
            let inst = band_instance(seed, 8, 64, 50, 16);
            let ids = inst.all_ids();
            let sol = strip_local_ratio(&inst, &ids, 64);
            sol.validate_packable(&inst, 32).unwrap();
            sol.validate(&inst).unwrap();
        }
    }

    #[test]
    fn strip_selects_nonempty_when_possible() {
        let inst = band_instance(3, 6, 64, 30, 16);
        let sol = strip_local_ratio(&inst, &inst.all_ids(), 64);
        assert!(!sol.is_empty());
    }

    #[test]
    fn strip_ratio_within_bound_on_small_instances() {
        // Compare against brute-force UFPP OPT (which dominates SAP OPT):
        // the guarantee is w(S) ≥ (1−4δ)/5 · OPT_SAP; test the weaker
        // measurable form against OPT_UFPP / 5 with slack for δ.
        for seed in 0..10 {
            let inst = band_instance(seed + 7, 5, 32, 10, 8);
            let ids = inst.all_ids();
            let sol = strip_local_ratio(&inst, &ids, 32);
            let w = sol.weight(&inst);
            let opt = brute_force_ufpp(&inst);
            assert!(
                5 * w + w / 2 + 1 >= opt / 2,
                "seed {seed}: strip weight {w} vs UFPP OPT {opt}"
            );
        }
    }

    fn brute_force_ufpp(inst: &Instance) -> u64 {
        let n = inst.num_tasks();
        assert!(n <= 20);
        let mut best = 0;
        for mask in 0u32..(1 << n) {
            let sel: Vec<TaskId> = (0..n).filter(|&i| mask & (1 << i) != 0).collect();
            if UfppSolution::new(sel.clone()).validate(inst).is_ok() {
                best = best.max(inst.total_weight(&sel));
            }
        }
        best
    }

    #[test]
    fn interval_scheduling_exact() {
        let net = PathNetwork::uniform(6, 10).unwrap();
        let tasks = vec![
            Task::of(0, 3, 1, 4),
            Task::of(2, 5, 1, 5),
            Task::of(3, 6, 1, 3),
            Task::of(0, 2, 1, 2),
        ];
        let inst = Instance::new(net, tasks).unwrap();
        let sol = weighted_interval_scheduling(&inst, &inst.all_ids());
        // Best: task 3 (w=2) + task 1 (w=5) = 7, vs task 0+2 = 7 — both
        // optimal; verify weight only.
        assert_eq!(inst.total_weight(&sol), 7);
        // Pairwise disjoint.
        for (a, &i) in sol.iter().enumerate() {
            for &k in &sol[a + 1..] {
                assert!(!inst.span(i).overlaps(inst.span(k)));
            }
        }
    }

    #[test]
    fn uniform_best_of_is_feasible_and_decent() {
        for seed in 0..15 {
            let mut s = seed + 0x77u64;
            let mut next = move || {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s
            };
            let m = 6;
            let c = 20u64;
            let net = PathNetwork::uniform(m, c).unwrap();
            let mut tasks = Vec::new();
            for _ in 0..12 {
                let lo = (next() % m as u64) as usize;
                let hi = (lo + 1 + (next() % (m as u64 - lo as u64)) as usize).min(m);
                tasks.push(Task::of(lo, hi, 1 + next() % c, 1 + next() % 20));
            }
            let inst = Instance::new(net, tasks).unwrap();
            let sol = uniform_best_of(&inst, &inst.all_ids(), c);
            sol.validate(&inst).unwrap();
            let opt = brute_force_ufpp(&inst);
            // Documented baseline ratio: 4 (= 1 wide + 3 narrow).
            assert!(4 * sol.weight(&inst) >= opt, "seed {seed}");
        }
    }

    #[test]
    fn empty_inputs() {
        let net = PathNetwork::uniform(3, 8).unwrap();
        let inst = Instance::new(net, vec![]).unwrap();
        assert!(strip_local_ratio(&inst, &[], 8).is_empty());
        assert!(weighted_interval_scheduling(&inst, &[]).is_empty());
        assert!(uniform_best_of(&inst, &[], 8).is_empty());
    }
}

//! Exact UFPP by branch & bound — the reference optimum for small
//! instances in tests and ratio experiments.
//!
//! Two engines: the combinatorial DFS [`solve_exact`] (no LP machinery,
//! always runs to completion) and the LP-guided [`solve_exact_lp_bnb`]
//! (best-bound search over the relaxation (1), node-budgeted and
//! checkpointed — the arm of choice when the run must stay preemptible).

use lp_solver::{solve_binary_bnb, SimplexOptions};
use sap_core::budget::Budget;
use sap_core::error::SapResult;
use sap_core::{Instance, TaskId, UfppSolution};

/// Solves UFPP exactly over `ids` by depth-first branch & bound with
/// remaining-weight pruning. Exponential in the worst case; intended for
/// `n ≲ 30` reference runs.
pub fn solve_exact(instance: &Instance, ids: &[TaskId]) -> UfppSolution {
    // Order by weight density (descending) so good solutions are found
    // early and pruning bites.
    let mut order: Vec<TaskId> = ids.to_vec();
    order.sort_by(|&a, &b| {
        let lhs = instance.weight(a) as u128 * instance.demand(b) as u128;
        let rhs = instance.weight(b) as u128 * instance.demand(a) as u128;
        rhs.cmp(&lhs)
    });
    // Suffix weight sums for pruning.
    let mut suffix = vec![0u64; order.len() + 1];
    for i in (0..order.len()).rev() {
        // lint:allow(p1) — suffix has len+1 slots and i < len, so both
        // accesses (and order[i]) are in bounds.
        suffix[i] = suffix[i + 1] + instance.weight(order[i]);
    }

    struct Dfs<'a> {
        inst: &'a Instance,
        order: &'a [TaskId],
        suffix: &'a [u64],
        loads: Vec<u64>,
        current: Vec<TaskId>,
        current_w: u64,
        best: Vec<TaskId>,
        best_w: u64,
    }

    impl Dfs<'_> {
        fn go(&mut self, i: usize) {
            if self.current_w > self.best_w {
                self.best_w = self.current_w;
                self.best = self.current.clone();
            }
            if i == self.order.len() || self.current_w + self.suffix[i] <= self.best_w {
                return;
            }
            let j = self.order[i];
            let t = self.inst.task(j);
            // Branch 1: take j if it fits.
            if t
                .span
                .edges()
                .all(|e| self.loads[e] + t.demand <= self.inst.network().capacity(e))
            {
                for e in t.span.edges() {
                    self.loads[e] += t.demand;
                }
                self.current.push(j);
                self.current_w += t.weight;
                self.go(i + 1);
                self.current_w -= t.weight;
                self.current.pop();
                for e in t.span.edges() {
                    self.loads[e] -= t.demand;
                }
            }
            // Branch 2: skip j.
            self.go(i + 1);
        }
    }

    let mut dfs = Dfs {
        inst: instance,
        order: &order,
        suffix: &suffix,
        loads: vec![0; instance.num_edges()],
        current: Vec::new(),
        current_w: 0,
        best: Vec::new(),
        best_w: 0,
    };
    dfs.go(0);
    UfppSolution::new(dfs.best)
}

/// Exact UFPP through LP-based branch & bound: builds the relaxation (1)
/// over `ids` (every variable is 0/1) and closes the integrality gap with
/// [`lp_solver::solve_binary_bnb`] under `budget`.
///
/// Returns `Ok(None)` when the node ceiling (`max_nodes`, `0` = solver
/// default) cut the search before the tree closed — the incumbent is then
/// not a certified optimum, and callers that need exactness must fall
/// back (the combinatorial [`solve_exact`] has no ceiling). A tripped
/// budget propagates as `Err`, exactly like every other metered arm.
///
/// Emits `lp.bnb.nodes` — nodes expanded, a pure function of the
/// instance, so telemetry stays byte-identical at any worker width.
pub fn solve_exact_lp_bnb(
    instance: &Instance,
    ids: &[TaskId],
    max_nodes: usize,
    budget: &Budget,
) -> SapResult<Option<UfppSolution>> {
    let phase = budget.telemetry().span("lp.bnb");
    let lp = crate::relax::build_relaxation(instance, ids);
    let opts = SimplexOptions { max_bnb_nodes: max_nodes, ..SimplexOptions::default() };
    let sol = solve_binary_bnb(&lp, opts, budget)?;
    phase.count("lp.bnb.nodes", sol.nodes);
    if !sol.proven_optimal {
        return Ok(None);
    }
    let chosen: Vec<TaskId> = sol.chosen.iter().map(|&i| ids[i]).collect();
    let out = UfppSolution::new(chosen);
    debug_assert!(out.validate(instance).is_ok());
    Ok(Some(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sap_core::{PathNetwork, Task};

    fn brute_force(inst: &Instance) -> u64 {
        let n = inst.num_tasks();
        assert!(n <= 20);
        let mut best = 0;
        for mask in 0u32..(1 << n) {
            let sel: Vec<TaskId> = (0..n).filter(|&i| mask & (1 << i) != 0).collect();
            if UfppSolution::new(sel.clone()).validate(inst).is_ok() {
                best = best.max(inst.total_weight(&sel));
            }
        }
        best
    }

    #[test]
    fn matches_bruteforce() {
        let mut s = 0xFACEu64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for case in 0..40 {
            let m = 2 + (next() % 6) as usize;
            let caps: Vec<u64> = (0..m).map(|_| 2 + next() % 12).collect();
            let net = PathNetwork::new(caps).unwrap();
            let mut tasks = Vec::new();
            for _ in 0..(1 + next() % 12) {
                let lo = (next() % m as u64) as usize;
                let hi = (lo + 1 + (next() % (m as u64 - lo as u64)) as usize).min(m);
                let b = net.bottleneck(sap_core::Span { lo, hi });
                tasks.push(Task::of(lo, hi, 1 + next() % b, next() % 25));
            }
            let inst = Instance::new(net, tasks).unwrap();
            let sol = solve_exact(&inst, &inst.all_ids());
            sol.validate(&inst).unwrap();
            assert_eq!(sol.weight(&inst), brute_force(&inst), "case {case}");
        }
    }

    #[test]
    fn knapsack_special_case() {
        // All tasks share an edge — UFPP degenerates to knapsack.
        let net = PathNetwork::new(vec![10]).unwrap();
        let tasks = vec![
            Task::of(0, 1, 6, 60),
            Task::of(0, 1, 5, 50),
            Task::of(0, 1, 5, 50),
        ];
        let inst = Instance::new(net, tasks).unwrap();
        let sol = solve_exact(&inst, &inst.all_ids());
        assert_eq!(sol.weight(&inst), 100);
    }

    #[test]
    fn empty() {
        let net = PathNetwork::uniform(2, 4).unwrap();
        let inst = Instance::new(net, vec![]).unwrap();
        assert!(solve_exact(&inst, &[]).is_empty());
    }

    #[test]
    fn lp_bnb_matches_dfs_engine() {
        let mut s = 0xBEEFu64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for case in 0..30 {
            let m = 2 + (next() % 5) as usize;
            let caps: Vec<u64> = (0..m).map(|_| 2 + next() % 10).collect();
            let net = PathNetwork::new(caps).unwrap();
            let mut tasks = Vec::new();
            for _ in 0..(1 + next() % 10) {
                let lo = (next() % m as u64) as usize;
                let hi = (lo + 1 + (next() % (m as u64 - lo as u64)) as usize).min(m);
                let b = net.bottleneck(sap_core::Span { lo, hi });
                tasks.push(Task::of(lo, hi, 1 + next() % b, next() % 20));
            }
            let inst = Instance::new(net, tasks).unwrap();
            let ids = inst.all_ids();
            let dfs = solve_exact(&inst, &ids);
            let bnb = solve_exact_lp_bnb(&inst, &ids, 0, &Budget::unlimited())
                .unwrap()
                .expect("default node ceiling closes n ≤ 10 instances");
            bnb.validate(&inst).unwrap();
            assert_eq!(bnb.weight(&inst), dfs.weight(&inst), "case {case}");
        }
    }

    #[test]
    fn lp_bnb_node_ceiling_yields_none() {
        // A 1-node ceiling cannot close any tree whose root relaxation is
        // fractional: three tasks contending for one capacity-7 edge.
        let net = PathNetwork::new(vec![7]).unwrap();
        let tasks =
            vec![Task::of(0, 1, 5, 10), Task::of(0, 1, 4, 7), Task::of(0, 1, 3, 5)];
        let inst = Instance::new(net, tasks).unwrap();
        let got =
            solve_exact_lp_bnb(&inst, &inst.all_ids(), 1, &Budget::unlimited()).unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn lp_bnb_budget_trips_propagate() {
        let net = PathNetwork::new(vec![7]).unwrap();
        let tasks = vec![Task::of(0, 1, 5, 10), Task::of(0, 1, 4, 7)];
        let inst = Instance::new(net, tasks).unwrap();
        let tight = Budget::unlimited().with_work_units(1);
        assert!(solve_exact_lp_bnb(&inst, &inst.all_ids(), 0, &tight).is_err());
    }
}

//! A Bonsma-et-al.-style constant-factor **UFPP** solver — the framework
//! the paper's SAP algorithm adapts (§1.2), implemented as the natural
//! comparator: split tasks into small / medium / large, solve each
//! regime, return the heaviest (Lemma 3).
//!
//! * **small** (δ-small): LP-guided rounding against the true capacities
//!   (the CMS-style step, as in the SAP pipeline but without strips —
//!   UFPP needs no vertical structure);
//! * **medium**: the AlmostUniform framework over classes `J^{k,ℓ}`.
//!   UFPP solutions for different classes of one residue cannot simply be
//!   unioned (loads add), so each class is solved against **reserved
//!   capacities** `c_e − 2^{k+2−q}`: by Observation 1 a feasible class
//!   solution loads an edge by at most `2·2^{k+ℓ}`, so the lower classes
//!   of the residue (spaced `ℓ+q` apart) contribute at most
//!   `Σ_i 2·2^{k−i(ℓ+q)+ℓ} < 2^{k+2−q}` — exactly the reserved headroom.
//!   Per class we use the exact branch & bound (with a greedy fallback
//!   beyond its budget), mirroring the SAP Elevator;
//! * **large** (`1/k`-large): the optimal rectangle packing of `R(J)` —
//!   a valid UFPP solution within `2k` of the UFPP optimum (Bonsma et
//!   al.'s colouring bound).

use sap_core::{classes_k_ell, classify_by_size, Instance, PathNetwork, Ratio, TaskId, UfppSolution};

use crate::exact::solve_exact;
use crate::greedy::greedy_by_density;
use crate::heuristic::round_lp_against_capacities;

/// Parameters of the UFPP combined solver.
#[derive(Debug, Clone)]
pub struct UfppParams {
    /// Small/medium threshold δ.
    pub delta_small: Ratio,
    /// Medium/large threshold (1/k).
    pub delta_large: Ratio,
    /// Class width ℓ of the medium framework.
    pub ell: u32,
    /// Headroom exponent `q` (reserve `2^{k+2−q}`; `q ≥ 3` keeps at least
    /// half of every capacity).
    pub q: u32,
    /// Per-class task-count cap for the exact sub-solver.
    pub max_class_size: usize,
}

impl Default for UfppParams {
    fn default() -> Self {
        UfppParams {
            delta_small: Ratio::new(1, 16),
            delta_large: Ratio::new(1, 2),
            ell: 4,
            q: 3,
            max_class_size: 22,
        }
    }
}

/// Per-regime result breakdown.
#[derive(Debug, Clone)]
pub struct UfppStats {
    /// Weight of the small-regime solution.
    pub small_weight: u64,
    /// Weight of the medium-regime solution.
    pub medium_weight: u64,
    /// Weight of the large-regime solution.
    pub large_weight: u64,
    /// `"small"`, `"medium"` or `"large"`.
    pub winner: &'static str,
}

/// Runs the combined UFPP solver on `ids`.
pub fn solve_ufpp_combined(
    instance: &Instance,
    ids: &[TaskId],
    params: &UfppParams,
) -> (UfppSolution, UfppStats) {
    let all = classify_by_size(instance, params.delta_small, params.delta_large);
    let wanted: std::collections::HashSet<TaskId> = ids.iter().copied().collect();
    let small: Vec<TaskId> = all.small.into_iter().filter(|j| wanted.contains(j)).collect();
    let medium: Vec<TaskId> = all.medium.into_iter().filter(|j| wanted.contains(j)).collect();
    let large: Vec<TaskId> = all.large.into_iter().filter(|j| wanted.contains(j)).collect();

    let small_sol = round_lp_against_capacities(instance, &small);
    let medium_sol = medium_framework(instance, &medium, params);
    let large_sol = large_rectangles(instance, &large);

    let sw = small_sol.weight(instance);
    let mw = medium_sol.weight(instance);
    let lw = large_sol.weight(instance);
    let (best, winner) = if sw >= mw && sw >= lw {
        (small_sol, "small")
    } else if mw >= lw {
        (medium_sol, "medium")
    } else {
        (large_sol, "large")
    };
    debug_assert!(best.validate(instance).is_ok());
    (
        best,
        UfppStats { small_weight: sw, medium_weight: mw, large_weight: lw, winner },
    )
}

/// The AlmostUniform framework for UFPP with reserved capacities.
fn medium_framework(instance: &Instance, ids: &[TaskId], params: &UfppParams) -> UfppSolution {
    if ids.is_empty() {
        return UfppSolution::empty();
    }
    let ell = params.ell.max(1);
    let q = params.q.max(3);
    let classes = classes_k_ell(instance, ids, ell);

    // Solve every class against its reserved capacities.
    let mut class_solutions: Vec<(u32, UfppSolution)> = Vec::with_capacity(classes.len());
    for (k, members) in &classes {
        let reserve = if k + 2 >= q { 1u64 << (k + 2 - q) } else { 1 };
        let reserved = instance
            .network()
            .map_capacities(|c| c.saturating_sub(reserve).min(1u64 << (k + ell)))
            .unwrap_or_else(|_| instance.network().clone());
        let sol = solve_class(instance, &reserved, members, params);
        class_solutions.push((*k, sol));
    }

    // Residue sweep: union classes spaced ℓ+q apart, keep the heaviest
    // residue. The reservation makes the union feasible; validated in
    // debug builds and re-checked greedily in release as a safety net.
    let period = ell + q;
    let mut best = UfppSolution::empty();
    let mut best_w = 0u64;
    for r in 0..period {
        let mut union: Vec<TaskId> = Vec::new();
        // Highest class first so the safety filter drops low-value
        // violators (never triggered when the reservation analysis holds).
        for (k, sol) in class_solutions.iter().rev() {
            if k % period != r {
                continue;
            }
            for &j in &sol.tasks {
                union.push(j);
                if UfppSolution::new(union.clone()).validate(instance).is_err() {
                    union.pop();
                }
            }
        }
        let sol = UfppSolution::new(union);
        let w = sol.weight(instance);
        if w > best_w || (best.is_empty() && best_w == 0) {
            best_w = w;
            best = sol;
        }
    }
    best
}

/// Exact (or greedy beyond budget) UFPP on one class against reserved
/// capacities; solutions are reported in original task ids.
fn solve_class(
    instance: &Instance,
    reserved: &PathNetwork,
    members: &[TaskId],
    params: &UfppParams,
) -> UfppSolution {
    // Build the class sub-instance over the reserved network, pruning
    // tasks that no longer fit at all.
    let tasks: Vec<sap_core::Task> = members.iter().map(|&j| *instance.task(j)).collect();
    let Ok((sub, kept)) = Instance::new_pruning(reserved.clone(), tasks) else {
        return UfppSolution::empty();
    };
    let sub_ids = sub.all_ids();
    let sol = if sub_ids.len() <= params.max_class_size {
        solve_exact(&sub, &sub_ids)
    } else {
        greedy_by_density(&sub, &sub_ids)
    };
    UfppSolution::new(sol.tasks.iter().map(|&i| members[kept[i]]).collect())
}

/// Large tasks: the exact rectangle packing (a valid UFPP solution).
fn large_rectangles(instance: &Instance, ids: &[TaskId]) -> UfppSolution {
    match rectpack::max_weight_packing(instance, ids, rectpack::MwisConfig::default()) {
        Some(chosen) => UfppSolution::new(chosen),
        None => greedy_by_density(instance, ids),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sap_core::Task;

    fn instance(seed: u64, m: usize, n: usize) -> Instance {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let caps: Vec<u64> = (0..m).map(|_| 32 + next() % 224).collect();
        let net = PathNetwork::new(caps).unwrap();
        let tasks: Vec<Task> = (0..n)
            .map(|_| {
                let lo = (next() % m as u64) as usize;
                let hi = (lo + 1 + (next() % (m as u64 - lo as u64)) as usize).min(m);
                let b = net.bottleneck(sap_core::Span { lo, hi });
                Task::of(lo, hi, 1 + next() % b, 1 + next() % 30)
            })
            .collect();
        Instance::new(net, tasks).unwrap()
    }

    #[test]
    fn combined_ufpp_is_feasible_and_reports_winner() {
        for seed in 0..8 {
            let inst = instance(seed, 8, 40);
            let ids = inst.all_ids();
            let (sol, stats) = solve_ufpp_combined(&inst, &ids, &UfppParams::default());
            sol.validate(&inst).unwrap();
            let w = sol.weight(&inst);
            assert_eq!(
                w,
                stats.small_weight.max(stats.medium_weight).max(stats.large_weight)
            );
            assert!(["small", "medium", "large"].contains(&stats.winner));
        }
    }

    #[test]
    fn combined_ufpp_ratio_on_small_instances() {
        // Measured comparator: stays within a small constant of exact.
        for seed in 0..8 {
            let inst = instance(seed + 30, 5, 11);
            let ids = inst.all_ids();
            let opt = solve_exact(&inst, &ids).weight(&inst);
            let (sol, _) = solve_ufpp_combined(&inst, &ids, &UfppParams::default());
            let w = sol.weight(&inst);
            assert!(w <= opt);
            assert!(8 * w >= opt, "seed {seed}: combined-UFPP {w} vs opt {opt}");
        }
    }

    #[test]
    fn medium_framework_unions_are_feasible() {
        for seed in 0..6 {
            let inst = instance(seed + 60, 10, 50);
            // Feed it everything; it will classify internally when called
            // through solve_ufpp_combined, here we stress the framework
            // directly on the ½-small tasks.
            let ids: Vec<TaskId> = inst
                .all_ids()
                .into_iter()
                .filter(|&j| 2 * inst.demand(j) <= inst.bottleneck(j))
                .collect();
            let sol = medium_framework(&inst, &ids, &UfppParams::default());
            sol.validate(&inst).unwrap();
        }
    }

    #[test]
    fn empty_input() {
        let inst = instance(0, 4, 6);
        let (sol, _) = solve_ufpp_combined(&inst, &[], &UfppParams::default());
        assert!(sol.is_empty());
    }
}

//! LP scaling + rounding for small tasks in a band (§4.1, Lemma 5).
//!
//! The paper's pipeline for a δ-small instance with `b(j) ∈ [B, 2B)`:
//!
//! 1. solve the LP relaxation (1) with the true capacities;
//! 2. scale the optimum by `¼`: the scaled point satisfies every row with
//!    capacity `½B` (because loads were ≤ 2B by Observation 1);
//! 3. round to an integral `½B`-packable solution (the paper cites
//!    Chekuri–Mydlarz–Shepherd, Theorem 6, losing `(1+ε)`).
//!
//! Step 3 is substituted by a deterministic greedy rounding in decreasing
//! fractional value (randomised-rounding-with-alteration, derandomised;
//! see DESIGN.md §3): scan tasks by `x_j` (ties broken by weight density)
//! and keep a task when the `½B` load bound survives on its whole span.
//! For δ-small tasks each edge's load can always be filled to within `δB`
//! of the bound, which is what makes the measured retention high (the
//! `T6` experiment quantifies it).

use std::cell::RefCell;

use lp_solver::{LpProblem, LpSolution, LpStatus, Scratch, ScratchPool, SimplexOptions, SolveStats};
use sap_core::budget::Budget;
use sap_core::error::SapResult;
use sap_core::{Instance, TaskId, UfppSolution};

use crate::relax::build_relaxation;

/// Warm workspaces parked per worker thread (shape-keyed; see
/// [`ScratchPool`]).
const POOL_CAPACITY: usize = 8;

thread_local! {
    /// Per-thread warm-start pool: the strata a worker thread packs (and
    /// consecutive requests it serves) check [`Scratch`] workspaces in
    /// and out by LP shape, so steady-state LP solves perform zero
    /// workspace allocations even across differently-sized strata.
    /// Determinism is unaffected — a warm scratch is pivot-identical to
    /// a cold one (see [`lp_solver::Scratch`]), which is why sharing
    /// across strata cannot change any solution, trace or counter.
    static LP_POOL: RefCell<ScratchPool> = RefCell::new(ScratchPool::new(POOL_CAPACITY));
}

/// Solve through the thread's shared warm-start pool; a re-entrant
/// borrow (impossible today — the LP solver never calls back into this
/// module) degrades to a one-shot workspace instead of panicking.
/// Returns the solution together with the solve's work counters.
fn solve_pooled(
    lp: &LpProblem,
    opts: SimplexOptions,
    budget: &Budget,
) -> SapResult<(LpSolution, SolveStats)> {
    LP_POOL.with(|cell| match cell.try_borrow_mut() {
        Ok(mut pool) => {
            let mut scratch = pool.checkout(lp);
            let out = lp.solve_budgeted_with_options(opts, budget, &mut scratch);
            let stats = scratch.stats();
            pool.checkin(lp, scratch);
            out.map(|sol| (sol, stats))
        }
        Err(_) => {
            let mut scratch = Scratch::new();
            let out = lp.solve_budgeted_with_options(opts, budget, &mut scratch);
            let stats = scratch.stats();
            out.map(|sol| (sol, stats))
        }
    })
}

/// Result of [`round_scaled_lp`].
#[derive(Debug, Clone)]
pub struct RoundedStrip {
    /// The integral solution; `bound`-packable.
    pub solution: UfppSolution,
    /// The fractional LP optimum before scaling (an upper bound on the
    /// best integral solution under the *original* capacities — only valid
    /// when `lp_status` is [`LpStatus::Optimal`]).
    pub lp_value: f64,
    /// The load bound the solution satisfies (= `B/2` in the paper,
    /// passed in by the caller).
    pub bound: u64,
    /// Status of the underlying LP solve. Anything other than
    /// [`LpStatus::Optimal`] means the rounding order was guided by a
    /// sub-optimal fractional point: the solution is still feasible and
    /// `bound`-packable, but carries no Lemma 5 guarantee, and callers
    /// that need the approximation ratio must fall back.
    pub lp_status: LpStatus,
}

/// Runs the scale-by-¼-and-round pipeline targeting load `bound` on every
/// edge. Returns a `bound`-packable UFPP solution over `ids`.
pub fn round_scaled_lp(instance: &Instance, ids: &[TaskId], bound: u64) -> RoundedStrip {
    let lp = build_relaxation(instance, ids);
    let sol = LP_POOL.with(|cell| match cell.try_borrow_mut() {
        Ok(mut pool) => {
            let mut scratch = pool.checkout(&lp);
            let sol = lp.solve_with_scratch(0, &mut scratch);
            pool.checkin(&lp, scratch);
            sol
        }
        Err(_) => lp.solve(0),
    });
    round_solution(instance, ids, bound, sol)
}

/// Budget-aware variant of [`round_scaled_lp`]: the LP solve is charged
/// against `budget` (one `LpPivot` unit per pivot, capped at
/// `opts.max_pivots` pivots, `0` = automatic) and the fault-injection
/// hooks [`Budget::lp_solve_fault`] / [`Budget::refactor_fault`] can
/// force a non-optimal status.
///
/// Emits the sparse-core work counters under the `lp.solve` span:
/// `lp.etas`, `lp.refactors`, `lp.pricing.scanned`, and
/// `lp.refactor_failed` when the solve reports a singular basis. All of
/// them are per-stratum-deterministic (pure functions of the problem
/// data), so telemetry exports stay byte-identical at any worker width.
///
/// Returns `Err(BudgetExhausted)` when the budget trips mid-solve; a
/// pivot-limit stop or an injected singular basis is reported in-band
/// via [`RoundedStrip::lp_status`].
pub fn round_scaled_lp_budgeted(
    instance: &Instance,
    ids: &[TaskId],
    bound: u64,
    opts: SimplexOptions,
    budget: &Budget,
) -> SapResult<RoundedStrip> {
    let phase = budget.telemetry().span("lp.solve");
    phase.count("solves", 1);
    let lp = build_relaxation(instance, ids);
    let (mut lp_sol, stats) = solve_pooled(&lp, opts, budget)?;
    phase.count("lp.etas", stats.etas);
    phase.count("lp.refactors", stats.refactors);
    phase.count("lp.pricing.scanned", stats.pricing_scanned);
    if lp_sol.status == LpStatus::SingularBasis {
        phase.count("lp.refactor_failed", 1);
    }
    if budget.lp_solve_fault() {
        phase.count("faulted", 1);
        lp_sol.status = LpStatus::IterationLimit;
    }
    Ok(round_solution(instance, ids, bound, lp_sol))
}

/// Greedy rounding of a fractional point (shared tail of both entry
/// points).
fn round_solution(
    instance: &Instance,
    ids: &[TaskId],
    bound: u64,
    lp_sol: LpSolution,
) -> RoundedStrip {
    let lp_value = lp_sol.objective;
    let lp_status = lp_sol.status;

    // Scaled fractional values x'_j = x*_j / 4 guide the greedy order.
    // (The ¼ factor cancels in the ordering but matters for the analysis:
    // the scaled point already fits under `bound` in expectation.)
    let mut order: Vec<(usize, f64)> = lp_sol
        .x
        .iter()
        .enumerate()
        .filter(|&(_, &x)| x > 1e-12)
        .map(|(i, &x)| (i, x))
        .collect();
    order.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| {
                // tie-break: weight per unit of demand, descending
                let (ia, ib) = (ids[a.0], ids[b.0]);
                let da = instance.weight(ia) as u128 * instance.demand(ib) as u128;
                let db = instance.weight(ib) as u128 * instance.demand(ia) as u128;
                db.cmp(&da)
            })
    });

    let mut loads = vec![0u64; instance.num_edges()];
    // High-water mark of the load profile: while `max_load + demand` stays
    // under the uniform bound every edge trivially fits, so the per-edge
    // scan is skipped. The kept set is identical to the plain scan's.
    let mut max_load = 0u64;
    let mut chosen: Vec<TaskId> = Vec::new();
    for (i, _) in order {
        let j = ids[i];
        let t = instance.task(j);
        if t.demand > bound {
            continue;
        }
        let fits = max_load + t.demand <= bound
            || t.span.edges().all(|e| loads[e] + t.demand <= bound);
        if fits {
            for e in t.span.edges() {
                loads[e] += t.demand;
                max_load = max_load.max(loads[e]);
            }
            chosen.push(j);
        }
    }
    RoundedStrip { solution: UfppSolution::new(chosen), lp_value, bound, lp_status }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sap_core::{PathNetwork, Task};

    fn band_instance(seed: u64, m: usize, b: u64, n: usize, delta_inv: u64) -> Instance {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        // Capacities within [B, 2B).
        let caps: Vec<u64> = (0..m).map(|_| b + next() % b).collect();
        let net = PathNetwork::new(caps).unwrap();
        let mut tasks = Vec::new();
        for _ in 0..n {
            let lo = (next() % m as u64) as usize;
            let hi = (lo + 1 + (next() % (m as u64 - lo as u64)) as usize).min(m);
            let d = 1 + next() % (b / delta_inv).max(1);
            tasks.push(Task::of(lo, hi, d, 1 + next() % 30));
        }
        Instance::new(net, tasks).unwrap()
    }

    #[test]
    fn output_respects_bound_exactly() {
        for seed in 0..10 {
            let inst = band_instance(seed, 8, 64, 60, 16);
            let ids = inst.all_ids();
            let r = round_scaled_lp(&inst, &ids, 32);
            r.solution.validate_packable(&inst, 32).unwrap();
            r.solution.validate(&inst).unwrap();
        }
    }

    #[test]
    fn retention_on_small_tasks_beats_one_quarter_of_lp() {
        // The paper's pipeline guarantees ≈ LP/4(1+ε) for δ-small tasks.
        for seed in 0..10 {
            let inst = band_instance(seed + 50, 10, 128, 120, 32);
            let ids = inst.all_ids();
            let r = round_scaled_lp(&inst, &ids, 64);
            let w = r.solution.weight(&inst) as f64;
            assert!(
                4.5 * w >= r.lp_value,
                "seed {seed}: rounded {w} too far below LP {}",
                r.lp_value
            );
        }
    }

    #[test]
    fn oversized_tasks_are_skipped() {
        let net = PathNetwork::uniform(2, 100).unwrap();
        let tasks = vec![Task::of(0, 2, 80, 100), Task::of(0, 2, 10, 1)];
        let inst = Instance::new(net, tasks).unwrap();
        let r = round_scaled_lp(&inst, &inst.all_ids(), 50);
        assert_eq!(r.solution.tasks, vec![1]);
    }

    #[test]
    fn empty_input() {
        let net = PathNetwork::uniform(2, 10).unwrap();
        let inst = Instance::new(net, vec![]).unwrap();
        let r = round_scaled_lp(&inst, &[], 5);
        assert!(r.solution.is_empty());
        assert_eq!(r.lp_value, 0.0);
    }
}

//! # ufpp
//!
//! Algorithms for the **Unsplittable Flow Problem on Paths**: the
//! substrate the paper's small-task algorithm runs on (§4.1) and the
//! baselines the experiments compare against.
//!
//! * [`relax`] — the LP relaxation (1) of UFPP, built on the workspace's
//!   simplex; also used as an upper bound on OPT in the ratio experiments.
//! * [`rounding`] — the `¼`-scaling + rounding pipeline of Lemma 5: from a
//!   fractional optimum to a `½B`-packable integral solution (the
//!   Chekuri–Mydlarz–Shepherd Theorem 6 step is substituted by a
//!   deterministic greedy rounding; see DESIGN.md §3).
//! * [`local_ratio`] — Algorithm **Strip** from the paper's appendix: the
//!   local-ratio `(5+ε)` alternative producing `½B`-packable solutions,
//!   implemented verbatim; and the classical Bar-Noy-et-al-style
//!   local-ratio for uniform capacities used as a baseline.
//! * [`exact`] — branch & bound exact UFPP for small instances (test
//!   oracle and ratio reference).
//! * [`greedy`] — greedy-by-weight / greedy-by-density baselines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod combined;
pub mod exact;
pub mod greedy;
pub mod heuristic;
pub mod local_ratio;
pub mod relax;
pub mod rounding;

pub use combined::{solve_ufpp_combined, UfppParams, UfppStats};
pub use exact::{solve_exact, solve_exact_lp_bnb};
pub use greedy::{greedy_by_density, greedy_by_weight};
pub use heuristic::{round_lp_against_capacities, solve_ufpp_heuristic};
pub use local_ratio::{strip_local_ratio, uniform_best_of};
pub use relax::{build_relaxation, lp_upper_bound};
pub use rounding::{round_scaled_lp, round_scaled_lp_budgeted, RoundedStrip};

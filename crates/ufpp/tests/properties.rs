//! Property tests for the UFPP algorithms.

use proptest::prelude::*;
use sap_core::{Instance, PathNetwork, Span, Task, TaskId, UfppSolution};

fn arb_instance() -> impl Strategy<Value = Instance> {
    (2usize..=6, 1usize..=12).prop_flat_map(|(m, n)| {
        let caps = proptest::collection::vec(4u64..=64, m);
        let tasks = proptest::collection::vec((0..m, 1..=m, 1u64..=64, 0u64..30), n);
        (caps, tasks).prop_map(move |(caps, raw)| {
            let net = PathNetwork::new(caps).unwrap();
            let tasks: Vec<Task> = raw
                .into_iter()
                .map(|(lo, len, d, w)| {
                    let lo = lo.min(m - 1);
                    let hi = (lo + len).min(m).max(lo + 1);
                    let b = net.bottleneck(Span::new(lo, hi).unwrap());
                    Task::of(lo, hi, d.min(b).max(1), w)
                })
                .collect();
            Instance::new(net, tasks).unwrap()
        })
    })
}

fn brute_force(inst: &Instance) -> u64 {
    let n = inst.num_tasks();
    let mut best = 0;
    for mask in 0u32..(1 << n) {
        let sel: Vec<TaskId> = (0..n).filter(|&i| mask & (1 << i) != 0).collect();
        if UfppSolution::new(sel.clone()).validate(inst).is_ok() {
            best = best.max(inst.total_weight(&sel));
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The exact B&B equals subset brute force.
    #[test]
    fn exact_matches_bruteforce(inst in arb_instance()) {
        let sol = ufpp::solve_exact(&inst, &inst.all_ids());
        sol.validate(&inst).unwrap();
        prop_assert_eq!(sol.weight(&inst), brute_force(&inst));
    }

    /// The LP relaxation dominates the integral optimum.
    #[test]
    fn lp_dominates_integral(inst in arb_instance()) {
        let (_, lp) = ufpp::lp_upper_bound(&inst, &inst.all_ids());
        prop_assert!(lp + 1e-6 >= brute_force(&inst) as f64);
    }

    /// Greedy baselines always return feasible solutions not beating OPT.
    #[test]
    fn greedy_feasible_and_bounded(inst in arb_instance()) {
        let opt = brute_force(&inst);
        for sol in [
            ufpp::greedy_by_weight(&inst, &inst.all_ids()),
            ufpp::greedy_by_density(&inst, &inst.all_ids()),
        ] {
            sol.validate(&inst).unwrap();
            prop_assert!(sol.weight(&inst) <= opt);
        }
    }

    /// Algorithm Strip stays ½B-packable on banded instances and selects
    /// only eligible tasks.
    #[test]
    fn strip_packability(inst in arb_instance()) {
        // Band the instance: B = min capacity (so all b(j) ∈ [B, 2B) is
        // not guaranteed — the packability invariant must hold anyway).
        let b = inst.network().min_capacity();
        let ids: Vec<TaskId> = inst
            .all_ids()
            .into_iter()
            .filter(|&j| 2 * inst.demand(j) <= b)
            .collect();
        let sol = ufpp::strip_local_ratio(&inst, &ids, b);
        sol.validate_packable(&inst, b / 2).unwrap();
    }

    /// Rounded LP solutions respect their bound exactly.
    #[test]
    fn rounding_respects_bound(inst in arb_instance(), divisor in 1u64..=4) {
        let bound = (inst.network().min_capacity() / divisor).max(1);
        let r = ufpp::round_scaled_lp(&inst, &inst.all_ids(), bound);
        r.solution.validate_packable(&inst, bound).unwrap();
        r.solution.validate(&inst).unwrap();
    }

    /// Weighted interval scheduling returns pairwise-disjoint spans and is
    /// optimal among such sets (checked by brute force over subsets).
    #[test]
    fn interval_scheduling_exactness(inst in arb_instance()) {
        let sol = ufpp::local_ratio::weighted_interval_scheduling(&inst, &inst.all_ids());
        for (i, &a) in sol.iter().enumerate() {
            for &b in &sol[i + 1..] {
                prop_assert!(!inst.span(a).overlaps(inst.span(b)));
            }
        }
        // Brute force over disjoint-span subsets.
        let n = inst.num_tasks();
        let mut best = 0u64;
        'mask: for mask in 0u32..(1 << n) {
            let sel: Vec<TaskId> = (0..n).filter(|&i| mask & (1 << i) != 0).collect();
            for (i, &a) in sel.iter().enumerate() {
                for &b in &sel[i + 1..] {
                    if inst.span(a).overlaps(inst.span(b)) {
                        continue 'mask;
                    }
                }
            }
            best = best.max(inst.total_weight(&sel));
        }
        prop_assert_eq!(inst.total_weight(&sol), best);
    }
}

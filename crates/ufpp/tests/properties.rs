//! Seeded property tests for the UFPP algorithms (hermetic replacement
//! for the old proptest suite — same invariants, in-repo PRNG).
//!
//! Build with `--features proptest` to raise the iteration counts.

use sap_core::{Instance, PathNetwork, Span, Task, TaskId, UfppSolution};
use sap_gen::Rng64;

const CASES: u64 = if cfg!(feature = "proptest") { 512 } else { 96 };

fn arb_instance(rng: &mut Rng64) -> Instance {
    let m = rng.gen_range(2usize..=6);
    let n = rng.gen_range(1usize..=12);
    let caps: Vec<u64> = (0..m).map(|_| rng.gen_range(4u64..=64)).collect();
    let net = PathNetwork::new(caps).unwrap();
    let tasks: Vec<Task> = (0..n)
        .map(|_| {
            let lo = rng.gen_range(0..m);
            let len = rng.gen_range(1..=m);
            let hi = (lo + len).min(m).max(lo + 1);
            let b = net.bottleneck(Span::new(lo, hi).unwrap());
            let d = rng.gen_range(1u64..=64);
            Task::of(lo, hi, d.min(b).max(1), rng.gen_range(0u64..30))
        })
        .collect();
    Instance::new(net, tasks).unwrap()
}

fn brute_force(inst: &Instance) -> u64 {
    let n = inst.num_tasks();
    let mut best = 0;
    for mask in 0u32..(1 << n) {
        let sel: Vec<TaskId> = (0..n).filter(|&i| mask & (1 << i) != 0).collect();
        if UfppSolution::new(sel.clone()).validate(inst).is_ok() {
            best = best.max(inst.total_weight(&sel));
        }
    }
    best
}

/// The exact B&B equals subset brute force.
#[test]
fn exact_matches_bruteforce() {
    for case in 0..CASES {
        let mut rng = Rng64::seed_from_u64(0x0f99_0001 ^ case);
        let inst = arb_instance(&mut rng);
        let sol = ufpp::solve_exact(&inst, &inst.all_ids());
        sol.validate(&inst).unwrap();
        assert_eq!(sol.weight(&inst), brute_force(&inst), "case {case}");
    }
}

/// The LP relaxation dominates the integral optimum.
#[test]
fn lp_dominates_integral() {
    for case in 0..CASES {
        let mut rng = Rng64::seed_from_u64(0x0f99_0002 ^ case);
        let inst = arb_instance(&mut rng);
        let (_, lp) = ufpp::lp_upper_bound(&inst, &inst.all_ids());
        assert!(lp + 1e-6 >= brute_force(&inst) as f64, "case {case}");
    }
}

/// Greedy baselines always return feasible solutions not beating OPT.
#[test]
fn greedy_feasible_and_bounded() {
    for case in 0..CASES {
        let mut rng = Rng64::seed_from_u64(0x0f99_0003 ^ case);
        let inst = arb_instance(&mut rng);
        let opt = brute_force(&inst);
        for sol in [
            ufpp::greedy_by_weight(&inst, &inst.all_ids()),
            ufpp::greedy_by_density(&inst, &inst.all_ids()),
        ] {
            sol.validate(&inst).unwrap();
            assert!(sol.weight(&inst) <= opt, "case {case}");
        }
    }
}

/// Algorithm Strip stays ½B-packable on banded instances and selects
/// only eligible tasks.
#[test]
fn strip_packability() {
    for case in 0..CASES {
        let mut rng = Rng64::seed_from_u64(0x0f99_0004 ^ case);
        let inst = arb_instance(&mut rng);
        // Band the instance: B = min capacity (so all b(j) ∈ [B, 2B) is
        // not guaranteed — the packability invariant must hold anyway).
        let b = inst.network().min_capacity();
        let ids: Vec<TaskId> = inst
            .all_ids()
            .into_iter()
            .filter(|&j| 2 * inst.demand(j) <= b)
            .collect();
        let sol = ufpp::strip_local_ratio(&inst, &ids, b);
        sol.validate_packable(&inst, b / 2).unwrap();
    }
}

/// Rounded LP solutions respect their bound exactly.
#[test]
fn rounding_respects_bound() {
    for case in 0..CASES {
        let mut rng = Rng64::seed_from_u64(0x0f99_0005 ^ case);
        let inst = arb_instance(&mut rng);
        let divisor = rng.gen_range(1u64..=4);
        let bound = (inst.network().min_capacity() / divisor).max(1);
        let r = ufpp::round_scaled_lp(&inst, &inst.all_ids(), bound);
        r.solution.validate_packable(&inst, bound).unwrap();
        r.solution.validate(&inst).unwrap();
    }
}

/// Weighted interval scheduling returns pairwise-disjoint spans and is
/// optimal among such sets (checked by brute force over subsets).
#[test]
fn interval_scheduling_exactness() {
    for case in 0..CASES {
        let mut rng = Rng64::seed_from_u64(0x0f99_0006 ^ case);
        let inst = arb_instance(&mut rng);
        let sol = ufpp::local_ratio::weighted_interval_scheduling(&inst, &inst.all_ids());
        for (i, &a) in sol.iter().enumerate() {
            for &b in &sol[i + 1..] {
                assert!(!inst.span(a).overlaps(inst.span(b)), "case {case}");
            }
        }
        // Brute force over disjoint-span subsets.
        let n = inst.num_tasks();
        let mut best = 0u64;
        'mask: for mask in 0u32..(1 << n) {
            let sel: Vec<TaskId> = (0..n).filter(|&i| mask & (1 << i) != 0).collect();
            for (i, &a) in sel.iter().enumerate() {
                for &b in &sel[i + 1..] {
                    if inst.span(a).overlaps(inst.span(b)) {
                        continue 'mask;
                    }
                }
            }
            best = best.max(inst.total_weight(&sel));
        }
        assert_eq!(inst.total_weight(&sol), best, "case {case}");
    }
}

//! Seeded property tests for the rectangle substrate (hermetic
//! replacement for the old proptest suite): the exact MWIS equals brute
//! force, packings project to feasible SAP solutions, and the colouring
//! machinery stays within its degeneracy guarantee.
//!
//! Build with `--features proptest` to raise the iteration counts.

use rectpack::{
    degeneracy_order, greedy_coloring, intersection_graph, max_weight_packing,
    max_weight_packing_bruteforce, MwisConfig,
};
use sap_core::{Instance, PathNetwork, Span, Task};
use sap_gen::Rng64;

const CASES: u64 = if cfg!(feature = "proptest") { 768 } else { 144 };

fn arb_instance(rng: &mut Rng64) -> Instance {
    let m = rng.gen_range(2usize..=7);
    let n = rng.gen_range(1usize..=11);
    let caps: Vec<u64> = (0..m).map(|_| rng.gen_range(2u64..=16)).collect();
    let net = PathNetwork::new(caps).unwrap();
    let tasks: Vec<Task> = (0..n)
        .map(|_| {
            let lo = rng.gen_range(0..m);
            let len = rng.gen_range(1..=m);
            let hi = (lo + len).min(m).max(lo + 1);
            let b = net.bottleneck(Span::new(lo, hi).unwrap());
            let d = rng.gen_range(1u64..=16);
            Task::of(lo, hi, d.min(b).max(1), rng.gen_range(1u64..=20))
        })
        .collect();
    Instance::new(net, tasks).unwrap()
}

#[test]
fn exact_mwis_matches_bruteforce() {
    for case in 0..CASES {
        let mut rng = Rng64::seed_from_u64(0x4ec7_0001 ^ case);
        let inst = arb_instance(&mut rng);
        let ids = inst.all_ids();
        let exact = max_weight_packing(&inst, &ids, MwisConfig::default()).expect("budget");
        let brute = max_weight_packing_bruteforce(&inst, &ids);
        assert_eq!(inst.total_weight(&exact), inst.total_weight(&brute), "case {case}");
        assert!(rectpack::reduction::is_valid_packing(&inst, &exact), "case {case}");
    }
}

#[test]
fn packing_projects_to_feasible_sap() {
    for case in 0..CASES {
        let mut rng = Rng64::seed_from_u64(0x4ec7_0002 ^ case);
        let inst = arb_instance(&mut rng);
        let ids = inst.all_ids();
        let exact = max_weight_packing(&inst, &ids, MwisConfig::default()).expect("budget");
        let sol = rectpack::reduction::packing_to_sap(&inst, &exact);
        sol.validate(&inst).unwrap();
        // Each selected task sits exactly at its residual height.
        for p in &sol.placements {
            assert_eq!(p.height, inst.bottleneck(p.task) - inst.demand(p.task), "case {case}");
        }
    }
}

#[test]
fn coloring_stays_within_degeneracy() {
    for case in 0..CASES {
        let mut rng = Rng64::seed_from_u64(0x4ec7_0003 ^ case);
        let inst = arb_instance(&mut rng);
        let ids = inst.all_ids();
        let adj = intersection_graph(&inst, &ids);
        let (order, degeneracy) = degeneracy_order(&adj);
        let colors = greedy_coloring(&adj, &order);
        assert!(rectpack::coloring::is_proper(&adj, &colors), "case {case}");
        assert!(rectpack::coloring::num_colors(&colors) <= degeneracy + 1, "case {case}");
    }
}

/// Rect disjointness is symmetric and matches the geometric predicate.
#[test]
fn disjointness_symmetry() {
    for case in 0..CASES {
        let mut rng = Rng64::seed_from_u64(0x4ec7_0004 ^ case);
        let inst = arb_instance(&mut rng);
        let ids = inst.all_ids();
        for &a in &ids {
            for &b in &ids {
                if a == b {
                    continue;
                }
                let ra = rectpack::rect_of(&inst, a);
                let rb = rectpack::rect_of(&inst, b);
                assert_eq!(
                    rectpack::rects_disjoint(&ra, &rb),
                    rectpack::rects_disjoint(&rb, &ra),
                    "case {case}"
                );
                let geo = !(ra.span.overlaps(rb.span) && ra.bottom < rb.top && rb.bottom < ra.top);
                assert_eq!(rectpack::rects_disjoint(&ra, &rb), geo, "case {case}");
            }
        }
    }
}

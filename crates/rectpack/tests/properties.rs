//! Property tests for the rectangle substrate: the exact MWIS equals
//! brute force, packings project to feasible SAP solutions, and the
//! colouring machinery stays within its degeneracy guarantee.

use proptest::prelude::*;
use rectpack::{
    degeneracy_order, greedy_coloring, intersection_graph, max_weight_packing,
    max_weight_packing_bruteforce, MwisConfig,
};
use sap_core::{Instance, PathNetwork, Span, Task};

fn arb_instance() -> impl Strategy<Value = Instance> {
    (2usize..=7, 1usize..=11).prop_flat_map(|(m, n)| {
        let caps = proptest::collection::vec(2u64..=16, m);
        let tasks = proptest::collection::vec((0..m, 1..=m, 1u64..=16, 1u64..=20), n);
        (caps, tasks).prop_map(move |(caps, raw)| {
            let net = PathNetwork::new(caps).unwrap();
            let tasks: Vec<Task> = raw
                .into_iter()
                .map(|(lo, len, d, w)| {
                    let lo = lo.min(m - 1);
                    let hi = (lo + len).min(m).max(lo + 1);
                    let b = net.bottleneck(Span::new(lo, hi).unwrap());
                    Task::of(lo, hi, d.min(b).max(1), w)
                })
                .collect();
            Instance::new(net, tasks).unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn exact_mwis_matches_bruteforce(inst in arb_instance()) {
        let ids = inst.all_ids();
        let exact = max_weight_packing(&inst, &ids, MwisConfig::default()).expect("budget");
        let brute = max_weight_packing_bruteforce(&inst, &ids);
        prop_assert_eq!(inst.total_weight(&exact), inst.total_weight(&brute));
        prop_assert!(rectpack::reduction::is_valid_packing(&inst, &exact));
    }

    #[test]
    fn packing_projects_to_feasible_sap(inst in arb_instance()) {
        let ids = inst.all_ids();
        let exact = max_weight_packing(&inst, &ids, MwisConfig::default()).expect("budget");
        let sol = rectpack::reduction::packing_to_sap(&inst, &exact);
        sol.validate(&inst).unwrap();
        // Each selected task sits exactly at its residual height.
        for p in &sol.placements {
            prop_assert_eq!(p.height, inst.bottleneck(p.task) - inst.demand(p.task));
        }
    }

    #[test]
    fn coloring_stays_within_degeneracy(inst in arb_instance()) {
        let ids = inst.all_ids();
        let adj = intersection_graph(&inst, &ids);
        let (order, degeneracy) = degeneracy_order(&adj);
        let colors = greedy_coloring(&adj, &order);
        prop_assert!(rectpack::coloring::is_proper(&adj, &colors));
        prop_assert!(rectpack::coloring::num_colors(&colors) <= degeneracy + 1);
    }

    /// Rect disjointness is symmetric and matches the geometric predicate.
    #[test]
    fn disjointness_symmetry(inst in arb_instance()) {
        let ids = inst.all_ids();
        for &a in &ids {
            for &b in &ids {
                if a == b { continue; }
                let ra = rectpack::rect_of(&inst, a);
                let rb = rectpack::rect_of(&inst, b);
                prop_assert_eq!(
                    rectpack::rects_disjoint(&ra, &rb),
                    rectpack::rects_disjoint(&rb, &ra)
                );
                let geo = !(ra.span.overlaps(rb.span)
                    && ra.bottom < rb.top
                    && rb.bottom < ra.top);
                prop_assert_eq!(rectpack::rects_disjoint(&ra, &rb), geo);
            }
        }
    }
}

//! # rectpack
//!
//! The rectangle substrate of the paper's large-task algorithm (§6).
//!
//! Every task `j` is *associated* with the rectangle
//! `R(j) = [s_j, t_j) × [ℓ(j), b(j))` where `b(j)` is the bottleneck
//! capacity of `j`'s path and `ℓ(j) = b(j) − d_j` is its *residual
//! capacity* — the rectangle induced by pushing `j` as high as it can go
//! (Fig. 7). Bonsma et al. showed the maximum-weight set of pairwise
//! disjoint such rectangles can be computed in polynomial time
//! (Theorem 7), and the paper observes the resulting packing **is** a SAP
//! solution and within factor `2k−1` of the optimal `1/k`-large SAP
//! solution (Theorem 3, via the degeneracy bound of Lemma 17).
//!
//! This crate provides:
//!
//! * [`reduction`] — the `R(j)` rectangles and their geometry;
//! * [`mwis`] — an **exact** maximum-weight independent set solver for
//!   top-drawn rectangle families, built on the min-capacity-edge
//!   divide & conquer (at most one rectangle can cross a minimum-capacity
//!   edge of a sub-instance — every rectangle through it has its top at
//!   exactly that capacity), with memoisation over canonical floor
//!   profiles; plus a brute-force reference;
//! * [`coloring`] — intersection graphs, smallest-last (degeneracy)
//!   ordering and greedy colouring [Matula–Beck 1983], used to check
//!   Lemmas 16/17 (`1/k`-large solutions have `(2k−2)`-degenerate
//!   rectangle graphs) and the tightness example of Fig. 8.

//! ## Example
//!
//! ```
//! use sap_core::{Instance, PathNetwork, Task};
//!
//! let net = PathNetwork::new(vec![10, 4, 10]).unwrap();
//! let inst = Instance::new(net, vec![
//!     Task::of(0, 3, 2, 10),  // crosses the valley: R = [0,3)×[2,4)
//!     Task::of(0, 1, 5, 4),   // R = [0,1)×[5,10) — fits above
//! ]).unwrap();
//! let best = rectpack::max_weight_packing(&inst, &inst.all_ids(),
//!                                         rectpack::MwisConfig::default()).unwrap();
//! assert_eq!(inst.total_weight(&best), 14);  // both rectangles are disjoint
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coloring;
pub mod mwis;
pub mod reduction;

pub use coloring::{degeneracy_order, greedy_coloring, intersection_graph};
pub use mwis::{
    max_weight_packing, max_weight_packing_bruteforce, max_weight_packing_budgeted, MwisConfig,
};
pub use reduction::{rect_of, rects_disjoint, Rect};

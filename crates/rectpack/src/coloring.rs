//! Rectangle intersection graphs, degeneracy orderings and greedy
//! colouring — the machinery behind Lemma 17 and Theorem 3's
//! `(2k−1)`-colour argument (and the Fig. 8 tightness example).

use sap_core::{Instance, TaskId};

use crate::reduction::{rect_of, rects_disjoint};

/// Adjacency lists of the intersection graph of the rectangles
/// `R(j)`, `j ∈ ids` (vertices are positions in `ids`).
pub fn intersection_graph(instance: &Instance, ids: &[TaskId]) -> Vec<Vec<usize>> {
    let rects: Vec<_> = ids.iter().map(|&j| rect_of(instance, j)).collect();
    let n = rects.len();
    let mut adj = vec![Vec::new(); n];
    for i in 0..n {
        for k in (i + 1)..n {
            if !rects_disjoint(&rects[i], &rects[k]) {
                adj[i].push(k);
                adj[k].push(i);
            }
        }
    }
    adj
}

/// Smallest-last ordering [Matula–Beck]: repeatedly remove a vertex of
/// minimum degree. Returns `(order, degeneracy)`; colouring greedily in
/// *reverse* removal order uses at most `degeneracy + 1` colours.
pub fn degeneracy_order(adj: &[Vec<usize>]) -> (Vec<usize>, usize) {
    let n = adj.len();
    let mut degree: Vec<usize> = adj.iter().map(|a| a.len()).collect();
    let mut removed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut degeneracy = 0;
    for _ in 0..n {
        let v = (0..n)
            .filter(|&v| !removed[v])
            .min_by_key(|&v| degree[v])
            // lint:allow(p1) — the loop runs exactly `n` times and removes one
            // vertex per iteration, so unremoved vertices always remain.
            .expect("vertices remain");
        degeneracy = degeneracy.max(degree[v]);
        removed[v] = true;
        order.push(v);
        for &u in &adj[v] {
            if !removed[u] {
                degree[u] -= 1;
            }
        }
    }
    (order, degeneracy)
}

/// Greedy colouring in reverse removal order; returns the colour of each
/// vertex. Uses at most `degeneracy + 1` colours.
pub fn greedy_coloring(adj: &[Vec<usize>], order: &[usize]) -> Vec<usize> {
    let n = adj.len();
    let mut color = vec![usize::MAX; n];
    for &v in order.iter().rev() {
        let mut used: Vec<bool> = vec![false; adj[v].len() + 1];
        for &u in &adj[v] {
            if color[u] != usize::MAX && color[u] < used.len() {
                used[color[u]] = true;
            }
        }
        // lint:allow(p1) — pigeonhole: `used` has deg(v)+1 slots and at most
        // deg(v) neighbours can occupy one, so a free colour always exists.
        color[v] = used.iter().position(|&b| !b).expect("a free colour exists");
    }
    color
}

/// Number of colours used by a colouring.
pub fn num_colors(colors: &[usize]) -> usize {
    colors.iter().map(|&c| c + 1).max().unwrap_or(0)
}

/// Checks that a colouring is proper.
pub fn is_proper(adj: &[Vec<usize>], colors: &[usize]) -> bool {
    adj.iter()
        .enumerate()
        .all(|(v, nbrs)| nbrs.iter().all(|&u| colors[v] != colors[u]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sap_core::{PathNetwork, Task};

    #[test]
    fn path_graph_degeneracy_one() {
        // Rects in a chain: A–B–C (A∩B, B∩C, A∥C).
        let net = PathNetwork::new(vec![4, 4, 4]).unwrap();
        let tasks = vec![
            Task::of(0, 2, 2, 1), // R = [0,2) × [2,4)
            Task::of(1, 3, 3, 1), // R = [1,3) × [1,4) — hits both
            Task::of(2, 3, 1, 1), // R = [2,3) × [3,4)
        ];
        let inst = Instance::new(net, tasks).unwrap();
        let adj = intersection_graph(&inst, &inst.all_ids());
        assert_eq!(adj[0], vec![1]);
        assert_eq!(adj[2], vec![1]);
        let (order, degeneracy) = degeneracy_order(&adj);
        assert_eq!(degeneracy, 1);
        let colors = greedy_coloring(&adj, &order);
        assert!(is_proper(&adj, &colors));
        assert_eq!(num_colors(&colors), 2);
    }

    #[test]
    fn independent_rectangles_use_one_color() {
        let net = PathNetwork::uniform(4, 10).unwrap();
        let tasks = vec![Task::of(0, 1, 2, 1), Task::of(2, 3, 2, 1)];
        let inst = Instance::new(net, tasks).unwrap();
        let adj = intersection_graph(&inst, &inst.all_ids());
        let (order, degeneracy) = degeneracy_order(&adj);
        assert_eq!(degeneracy, 0);
        let colors = greedy_coloring(&adj, &order);
        assert_eq!(num_colors(&colors), 1);
    }

    #[test]
    fn clique_needs_full_palette() {
        // All tasks cross one edge with equal tops ⇒ pairwise intersecting.
        let net = PathNetwork::new(vec![8]).unwrap();
        let tasks: Vec<Task> = (1..=4).map(|d| Task::of(0, 1, d, 1)).collect();
        let inst = Instance::new(net, tasks).unwrap();
        let adj = intersection_graph(&inst, &inst.all_ids());
        let (order, degeneracy) = degeneracy_order(&adj);
        assert_eq!(degeneracy, 3);
        let colors = greedy_coloring(&adj, &order);
        assert!(is_proper(&adj, &colors));
        assert_eq!(num_colors(&colors), 4);
    }

    #[test]
    fn greedy_never_exceeds_degeneracy_plus_one() {
        let mut s = 0xDEADBEEFu64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for _ in 0..30 {
            let m = 2 + (next() % 6) as usize;
            let caps: Vec<u64> = (0..m).map(|_| 2 + next() % 20).collect();
            let net = PathNetwork::new(caps).unwrap();
            let mut tasks = Vec::new();
            for _ in 0..(2 + next() % 12) {
                let lo = (next() % m as u64) as usize;
                let hi = (lo + 1 + (next() % (m as u64 - lo as u64)) as usize).min(m);
                let b = net.bottleneck(sap_core::Span { lo, hi });
                tasks.push(Task::of(lo, hi, 1 + next() % b, 1));
            }
            let inst = Instance::new(net, tasks).unwrap();
            let adj = intersection_graph(&inst, &inst.all_ids());
            let (order, degeneracy) = degeneracy_order(&adj);
            let colors = greedy_coloring(&adj, &order);
            assert!(is_proper(&adj, &colors));
            assert!(num_colors(&colors) <= degeneracy + 1);
        }
    }
}

//! Exact maximum-weight independent set for top-drawn rectangles.
//!
//! This plays the role of Theorem 7 (Bonsma et al.'s `O(n⁴)` optimal
//! rectangle packing for families `R(J)`). The structure it exploits:
//!
//! * Every rectangle `R(j)` has its top at `b(j)`, the minimum capacity
//!   over `j`'s span.
//! * Let `e*` be a minimum-capacity edge of the (sub-)path. Every
//!   rectangle whose span contains `e*` has top exactly `c_{e*}`, so any
//!   two of them intersect — **at most one can be selected**.
//! * Once the crossing rectangle `j*` is fixed (or none), the remaining
//!   candidates split into the sub-paths left and right of `e*`,
//!   independent up to a *floor constraint*: within `I_{j*}`, selected
//!   rectangles must have bottom `≥ c_{e*}` (they live above `j*`'s top,
//!   which is possible because their own bottlenecks are `≥ c_{e*}`).
//!
//! The recursion memoises on `(range, canonical floor profile)`. For the
//! `1/k`-large instances the paper feeds it, the profile stays shallow and
//! the measured running time is polynomial (see the `T3` runtime
//! experiment); a state budget keeps adversarial inputs from running away.
//!
//! Memo keys are **interned**: every canonical constraint set is stored
//! once in a hash-consed arena and the memo maps `(lo, hi, set-id)`
//! instead of owning a `Vec<Constraint>` clone per state. Combined with
//! reused canonicalisation scratch buffers, the recursion performs one
//! arena allocation per *distinct* constraint set instead of four-plus
//! allocations per *visit*; the telemetry counters `mwis.allocs` /
//! `mwis.allocs_legacy` expose both schemes' deterministic allocation
//! counts so the improvement is measurable without allocator hooks.

use std::collections::HashMap;

use sap_core::budget::{Budget, CheckpointClass};
use sap_core::error::{SapError, SapResult};
use sap_core::{EdgeId, Instance, TaskId};

use crate::reduction::{is_valid_packing, rect_of};

/// Budget knobs for the exact solver.
#[derive(Debug, Clone, Copy)]
pub struct MwisConfig {
    /// Maximum number of distinct memoised states before giving up.
    pub max_states: usize,
}

impl Default for MwisConfig {
    fn default() -> Self {
        MwisConfig { max_states: 2_000_000 }
    }
}

/// A floor constraint: tasks whose span overlaps `lo..hi` must have
/// `ℓ(j) ≥ floor`.
type Constraint = (usize, usize, u64);

/// Interned id of a canonical constraint set (dense arena index).
type ConsId = u64;

/// Memo key: sub-range plus the interned id of the canonicalised
/// constraints clipped to it.
type StateKey = (usize, usize, ConsId);

/// Hash-consed arena of canonical constraint sets: each distinct set is
/// boxed exactly once and addressed by a dense [`ConsId`]. Memo keys
/// carry the id, so probing and inserting the memo never clones a
/// constraint vector.
struct ConstraintPool {
    arena: Vec<Box<[Constraint]>>,
    /// FNV hash → arena ids with that hash (collision chain; collisions
    /// only lengthen the probe, they never change observable output).
    index: HashMap<u64, Vec<ConsId>>,
    /// Arena insertions — the actual allocation count of the interned
    /// scheme (one per distinct set, ever).
    allocs: u64,
}

impl ConstraintPool {
    fn new() -> Self {
        ConstraintPool { arena: Vec::new(), index: HashMap::new(), allocs: 0 }
    }

    /// The interned set for `id`. Ids are only minted by
    /// [`ConstraintPool::intern`], so the lookup cannot miss; an
    /// out-of-range id degrades to the empty set rather than panicking.
    fn get(&self, id: ConsId) -> &[Constraint] {
        self.arena.get(id as usize).map_or(&[], |b| b.as_ref())
    }

    /// FNV-1a over the constraint words — hermetic and deterministic
    /// run-to-run (no `RandomState` seeding).
    fn hash(cons: &[Constraint]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &(lo, hi, f) in cons {
            for v in [lo as u64, hi as u64, f] {
                h ^= v;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        }
        h
    }

    /// Returns the id of `cons`, inserting it into the arena on first
    /// sight. Sets must already be canonical (sorted, dominance-pruned).
    fn intern(&mut self, cons: &[Constraint]) -> ConsId {
        let h = Self::hash(cons);
        if let Some(ids) = self.index.get(&h) {
            for &id in ids {
                if self.arena.get(id as usize).is_some_and(|b| b.as_ref() == cons) {
                    return id;
                }
            }
        }
        let id = self.arena.len() as ConsId;
        self.arena.push(cons.into());
        self.allocs += 1;
        self.index.entry(h).or_default().push(id);
        id
    }
}

struct Solver<'a> {
    inst: &'a Instance,
    ids: &'a [TaskId],
    memo: HashMap<StateKey, (u64, Option<TaskId>)>,
    pool: ConstraintPool,
    /// Reused canonicalisation output buffer.
    canon_buf: Vec<Constraint>,
    /// Reused dominance-pruning marks.
    keep_buf: Vec<bool>,
    /// Scratch-buffer growths (counted like arena insertions, so the
    /// `mwis.allocs` gauge covers every allocation the scheme performs).
    scratch_allocs: u64,
    /// What the pre-interning scheme would have allocated: two buffers
    /// per canonicalisation, one owned key clone per memo probe, one
    /// floor-extended clone per crossing branch.
    legacy_allocs: u64,
    max_states: usize,
    exhausted: bool,
    budget: Option<&'a Budget>,
    budget_tripped: bool,
}

/// Computes a maximum-weight subset of `ids` whose rectangles `R(j)` are
/// pairwise disjoint. Returns `None` when the state budget is exhausted
/// (never observed on the paper's workloads; see `MwisConfig`).
pub fn max_weight_packing(
    instance: &Instance,
    ids: &[TaskId],
    config: MwisConfig,
) -> Option<Vec<TaskId>> {
    // Without a cooperative budget the only Err source is absent, so the
    // error arm folds into the state-budget `None`.
    run_packing(instance, ids, config, None).unwrap_or(None)
}

/// Budget-aware variant of [`max_weight_packing`]: charges one
/// `PackSweep` work unit per recursive sweep against `budget`.
///
/// `Err(BudgetExhausted)` is the cooperative budget tripping; `Ok(None)`
/// is the solver's own memo-state budget giving up, as in the infallible
/// variant.
pub fn max_weight_packing_budgeted(
    instance: &Instance,
    ids: &[TaskId],
    config: MwisConfig,
    budget: &Budget,
) -> SapResult<Option<Vec<TaskId>>> {
    run_packing(instance, ids, config, Some(budget))
}

fn run_packing(
    instance: &Instance,
    ids: &[TaskId],
    config: MwisConfig,
    budget: Option<&Budget>,
) -> SapResult<Option<Vec<TaskId>>> {
    if ids.is_empty() {
        return Ok(Some(Vec::new()));
    }
    let mut solver = Solver {
        inst: instance,
        ids,
        memo: HashMap::new(),
        pool: ConstraintPool::new(),
        canon_buf: Vec::new(),
        keep_buf: Vec::new(),
        scratch_allocs: 0,
        legacy_allocs: 0,
        max_states: config.max_states,
        exhausted: false,
        budget,
        budget_tripped: false,
    };
    let m = instance.num_edges();
    let root = solver.pool.intern(&[]);
    let value = solver.solve(0, m, root, None);
    if let Some(b) = budget {
        b.telemetry().gauge_max("mwis.memo_states", solver.memo.len() as u64);
        b.telemetry().count("mwis.allocs", solver.pool.allocs + solver.scratch_allocs);
        b.telemetry().count("mwis.allocs_legacy", solver.legacy_allocs);
    }
    if solver.budget_tripped {
        return Err(SapError::BudgetExhausted);
    }
    if solver.exhausted {
        return Ok(None);
    }
    let mut chosen = Vec::new();
    solver.reconstruct(0, m, root, None, &mut chosen);
    debug_assert!(is_valid_packing(instance, &chosen));
    debug_assert_eq!(instance.total_weight(&chosen), value);
    Ok(Some(chosen))
}

impl<'a> Solver<'a> {
    /// Canonicalises the interned set `parent` (plus an optional extra
    /// floor from a crossing branch) for the sub-range `lo..hi` and
    /// interns the result: clip, drop non-overlapping, sort, merge
    /// dominated entries. Runs entirely in the reused scratch buffers —
    /// the only allocation is the arena insertion on a first-seen set.
    ///
    /// Interned sets are stored sorted, so after clipping the buffer is
    /// usually still sorted (clipping is monotone); the O(k log k) sort
    /// only runs when clipping collapsed distinct endpoints out of order
    /// or an extra floor was appended.
    fn canonicalize(
        &mut self,
        lo: usize,
        hi: usize,
        parent: ConsId,
        extra: Option<Constraint>,
    ) -> ConsId {
        let mut buf = std::mem::take(&mut self.canon_buf);
        let mut keep = std::mem::take(&mut self.keep_buf);
        let (buf_cap, keep_cap) = (buf.capacity(), keep.capacity());
        buf.clear();
        {
            let cons = self.pool.get(parent);
            for &(clo, chi, f) in cons.iter().chain(extra.iter()) {
                let nlo = clo.max(lo);
                let nhi = chi.min(hi);
                if nlo < nhi && f > 0 {
                    buf.push((nlo, nhi, f));
                }
            }
        }
        // The allocating scheme paid an output vector, a keep vector and
        // (at the caller) an owned memo-key clone per canonicalisation.
        self.legacy_allocs += 3;
        if !buf.windows(2).all(|pair| pair[0] <= pair[1]) {
            buf.sort_unstable();
        }
        debug_assert!(buf.windows(2).all(|pair| pair[0] <= pair[1]));
        // Remove entries dominated by another (contained x-range with a
        // floor no larger).
        keep.clear();
        keep.resize(buf.len(), true);
        for i in 0..buf.len() {
            for j in 0..buf.len() {
                if i != j && keep[i] && keep[j] {
                    let (ilo, ihi, fi) = buf[i];
                    let (jlo, jhi, fj) = buf[j];
                    let contained = jlo <= ilo && ihi <= jhi;
                    let tie_break = fi < fj || (fi == fj && (jlo, jhi) != (ilo, ihi));
                    if contained && fi <= fj && (tie_break || j < i) {
                        keep[i] = false;
                    }
                }
            }
        }
        let mut idx = 0;
        buf.retain(|_| {
            let k = keep.get(idx).copied().unwrap_or(true);
            idx += 1;
            k
        });
        let id = self.pool.intern(&buf);
        self.scratch_allocs += u64::from(buf.capacity() > buf_cap);
        self.scratch_allocs += u64::from(keep.capacity() > keep_cap);
        self.canon_buf = buf;
        self.keep_buf = keep;
        id
    }

    /// True when task `j` (span within `lo..hi`) satisfies all floors.
    fn eligible(&self, j: TaskId, lo: usize, hi: usize, cons: &[Constraint]) -> bool {
        let span = self.inst.span(j);
        if span.lo < lo || span.hi > hi {
            return false;
        }
        let ell = self.inst.bottleneck(j) - self.inst.demand(j);
        cons.iter()
            .all(|&(clo, chi, f)| !(span.lo < chi && clo < span.hi) || ell >= f)
    }

    fn split_edge(&self, lo: usize, hi: usize) -> EdgeId {
        self.inst
            .network()
            .bottleneck_edge(sap_core::Span { lo, hi })
    }

    /// Solves the sub-range `lo..hi` under the interned parent set plus
    /// an optional crossing floor (applied during canonicalisation, so
    /// the floor-extended set is never materialised as an owned clone).
    fn solve(&mut self, lo: usize, hi: usize, parent: ConsId, extra: Option<Constraint>) -> u64 {
        if lo >= hi || self.exhausted {
            return 0;
        }
        if let Some(b) = self.budget {
            b.tick(CheckpointClass::PackSweep, 1);
            if b.checkpoint(CheckpointClass::PackSweep, 1).is_err() {
                // Unwind the whole recursion; the caller maps this to
                // Err(BudgetExhausted), so the bogus 0 value is never used.
                self.exhausted = true;
                self.budget_tripped = true;
                return 0;
            }
        }
        let id = self.canonicalize(lo, hi, parent, extra);
        let key = (lo, hi, id);
        if let Some(&(v, _)) = self.memo.get(&key) {
            return v;
        }
        if self.memo.len() >= self.max_states {
            self.exhausted = true;
            return 0;
        }

        let e = self.split_edge(lo, hi);
        let cap = self.inst.network().capacity(e);
        // One pass over the ids: does any candidate exist, and which
        // candidates cross the split edge?
        let mut any_candidate = false;
        let mut crossing: Vec<TaskId> = Vec::new();
        {
            let cons = self.pool.get(id);
            for &j in self.ids {
                if self.eligible(j, lo, hi, cons) {
                    any_candidate = true;
                    if self.inst.span(j).contains(e) {
                        crossing.push(j);
                    }
                }
            }
        }
        if !any_candidate {
            self.memo.insert(key, (0, None));
            return 0;
        }

        // Branch: no task crosses e.
        let mut best = self.solve(lo, e, id, None) + self.solve(e + 1, hi, id, None);
        let mut best_choice: Option<TaskId> = None;

        // Branch: j* crosses e.
        for j in crossing {
            let span = self.inst.span(j);
            debug_assert_eq!(self.inst.bottleneck(j), cap);
            // The allocating scheme cloned the constraint vector here to
            // append the floor.
            self.legacy_allocs += 1;
            let floor = Some((span.lo, span.hi, cap));
            let v = self.inst.weight(j)
                + self.solve(lo, e, id, floor)
                + self.solve(e + 1, hi, id, floor);
            if v > best {
                best = v;
                best_choice = Some(j);
            }
        }

        self.memo.insert(key, (best, best_choice));
        best
    }

    fn reconstruct(
        &mut self,
        lo: usize,
        hi: usize,
        parent: ConsId,
        extra: Option<Constraint>,
        out: &mut Vec<TaskId>,
    ) {
        if lo >= hi {
            return;
        }
        let id = self.canonicalize(lo, hi, parent, extra);
        let key = (lo, hi, id);
        let Some(&(v, choice)) = self.memo.get(&key) else {
            return;
        };
        if v == 0 && choice.is_none() {
            // Could still be the "no crossing task" branch with zero value;
            // nothing to collect either way.
            return;
        }
        let e = self.split_edge(lo, hi);
        match choice {
            None => {
                self.reconstruct(lo, e, id, None, out);
                self.reconstruct(e + 1, hi, id, None, out);
            }
            Some(j) => {
                out.push(j);
                let span = self.inst.span(j);
                let cap = self.inst.network().capacity(e);
                let floor = Some((span.lo, span.hi, cap));
                self.reconstruct(lo, e, id, floor, out);
                self.reconstruct(e + 1, hi, id, floor, out);
            }
        }
    }
}

/// Brute-force MWIS over rectangles, `O(2ⁿ·n²)` — the oracle for tests.
///
/// # Panics
///
/// Panics when more than 22 ids are given.
pub fn max_weight_packing_bruteforce(instance: &Instance, ids: &[TaskId]) -> Vec<TaskId> {
    let n = ids.len();
    assert!(n <= 22, "brute force limited to 22 tasks");
    let rects: Vec<_> = ids.iter().map(|&j| rect_of(instance, j)).collect();
    let mut best_mask = 0u32;
    let mut best_w = 0u64;
    'mask: for mask in 0u32..(1u32 << n) {
        let mut w = 0u64;
        for i in 0..n {
            if mask & (1 << i) == 0 {
                continue;
            }
            for k in (i + 1)..n {
                if mask & (1 << k) != 0 && !crate::reduction::rects_disjoint(&rects[i], &rects[k])
                {
                    continue 'mask;
                }
            }
            w += instance.weight(ids[i]);
        }
        if w > best_w {
            best_w = w;
            best_mask = mask;
        }
    }
    (0..n).filter(|&i| best_mask & (1 << i) != 0).map(|i| ids[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sap_core::{PathNetwork, Task};

    fn solve_both(inst: &Instance) -> (u64, u64) {
        let ids = inst.all_ids();
        let exact = max_weight_packing(inst, &ids, MwisConfig::default()).expect("budget");
        assert!(is_valid_packing(inst, &exact));
        let brute = max_weight_packing_bruteforce(inst, &ids);
        (inst.total_weight(&exact), inst.total_weight(&brute))
    }

    #[test]
    fn single_task() {
        let net = PathNetwork::uniform(3, 5).unwrap();
        let inst = Instance::new(net, vec![Task::of(0, 3, 2, 7)]).unwrap();
        let (a, b) = solve_both(&inst);
        assert_eq!(a, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn crossing_min_edge_excludes_all_but_one() {
        // All three tasks cross the min edge: tops all equal ⇒ pick max w.
        let net = PathNetwork::new(vec![9, 3, 9]).unwrap();
        let tasks = vec![
            Task::of(0, 3, 1, 5),
            Task::of(1, 2, 2, 7),
            Task::of(0, 2, 3, 6),
        ];
        let inst = Instance::new(net, tasks).unwrap();
        let (a, b) = solve_both(&inst);
        assert_eq!(a, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn stacking_above_the_crossing_task() {
        // j* crosses the valley (top 4); side tasks with high residual can
        // sit above it, low-residual ones cannot.
        let net = PathNetwork::new(vec![10, 4, 10]).unwrap();
        let tasks = vec![
            Task::of(0, 3, 2, 10), // R = [0,3) × [2,4) — crosses valley
            Task::of(0, 1, 5, 4),  // R = [0,1) × [5,10) — above, compatible
            Task::of(2, 3, 7, 4),  // R = [2,3) × [3,10) — bottom 3 < 4 ⇒ conflict
        ];
        let inst = Instance::new(net, tasks).unwrap();
        let ids = inst.all_ids();
        let exact = max_weight_packing(&inst, &ids, MwisConfig::default()).unwrap();
        let mut sorted = exact.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1]);
        let (a, b) = solve_both(&inst);
        assert_eq!(a, b);
    }

    #[test]
    fn matches_bruteforce_on_random_instances() {
        let mut s = 0xC0FFEEu64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for case in 0..60 {
            let m = 2 + (next() % 7) as usize;
            let caps: Vec<u64> = (0..m).map(|_| 2 + next() % 14).collect();
            let net = PathNetwork::new(caps).unwrap();
            let n = 1 + (next() % 12) as usize;
            let mut tasks = Vec::new();
            for _ in 0..n {
                let lo = (next() % m as u64) as usize;
                let hi = (lo + 1 + (next() % (m as u64 - lo as u64)) as usize).min(m);
                let span = sap_core::Span { lo, hi };
                let b = net.bottleneck(span);
                let d = 1 + next() % b;
                tasks.push(Task::of(lo, hi, d, 1 + next() % 20));
            }
            let inst = Instance::new(net, tasks).unwrap();
            let (a, b) = solve_both(&inst);
            assert_eq!(a, b, "case {case}");
        }
    }

    #[test]
    fn large_task_family_solves_fast() {
        // 1/2-large workload, n = 60: must finish within the state budget.
        let mut s = 0xBEEF123u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let m = 30usize;
        let caps: Vec<u64> = (0..m).map(|_| 16 + next() % 240).collect();
        let net = PathNetwork::new(caps).unwrap();
        let mut tasks = Vec::new();
        for _ in 0..60 {
            let lo = (next() % m as u64) as usize;
            let hi = (lo + 1 + (next() % 6) as usize).min(m);
            let span = sap_core::Span { lo, hi };
            let b = net.bottleneck(span);
            let d = b / 2 + 1 + next() % (b - b / 2); // strictly 1/2-large
            tasks.push(Task::of(lo, hi, d.min(b), 1 + next() % 50));
        }
        let inst = Instance::new(net, tasks).unwrap();
        let ids = inst.all_ids();
        let sol = max_weight_packing(&inst, &ids, MwisConfig::default()).expect("budget");
        assert!(is_valid_packing(&inst, &sol));
        assert!(!sol.is_empty());
    }

    #[test]
    fn empty_input() {
        let net = PathNetwork::uniform(2, 4).unwrap();
        let inst = Instance::new(net, vec![]).unwrap();
        assert_eq!(
            max_weight_packing(&inst, &[], MwisConfig::default()).unwrap(),
            Vec::<TaskId>::new()
        );
    }

    #[test]
    fn interning_allocates_far_less_than_the_legacy_scheme() {
        // The deterministic allocation gauges must show the interned
        // scheme at well under 80% of the legacy clone-per-visit scheme
        // (the PR's acceptance bar is ≥20% fewer) on a 1/2-large family.
        let mut s = 0xBEEF123u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let m = 30usize;
        let caps: Vec<u64> = (0..m).map(|_| 16 + next() % 240).collect();
        let net = PathNetwork::new(caps).unwrap();
        let mut tasks = Vec::new();
        for _ in 0..60 {
            let lo = (next() % m as u64) as usize;
            let hi = (lo + 1 + (next() % 6) as usize).min(m);
            let span = sap_core::Span { lo, hi };
            let b = net.bottleneck(span);
            let d = b / 2 + 1 + next() % (b - b / 2);
            tasks.push(Task::of(lo, hi, d.min(b), 1 + next() % 50));
        }
        let inst = Instance::new(net, tasks).unwrap();
        let ids = inst.all_ids();
        let rec = sap_core::Recorder::new();
        let budget = Budget::unlimited().with_telemetry(rec.handle());
        max_weight_packing_budgeted(&inst, &ids, MwisConfig::default(), &budget)
            .unwrap()
            .unwrap();
        let actual = rec.handle().counter("mwis.allocs");
        let legacy = rec.handle().counter("mwis.allocs_legacy");
        assert!(actual > 0, "interned scheme still allocates something");
        assert!(legacy > actual, "legacy model must dominate");
        assert!(
            actual * 5 <= legacy * 4,
            "interned allocs {actual} not ≥20% below legacy {legacy}"
        );
    }

    #[test]
    fn budgeted_matches_unbudgeted_and_trips() {
        let net = PathNetwork::new(vec![10, 4, 10]).unwrap();
        let tasks = vec![Task::of(0, 3, 2, 10), Task::of(0, 1, 5, 4), Task::of(2, 3, 7, 4)];
        let inst = Instance::new(net, tasks).unwrap();
        let ids = inst.all_ids();
        let plain = max_weight_packing(&inst, &ids, MwisConfig::default()).unwrap();
        let budgeted =
            max_weight_packing_budgeted(&inst, &ids, MwisConfig::default(), &Budget::unlimited())
                .unwrap()
                .unwrap();
        assert_eq!(plain, budgeted);
        let tight = Budget::unlimited().with_work_units(1);
        assert!(matches!(
            max_weight_packing_budgeted(&inst, &ids, MwisConfig::default(), &tight),
            Err(SapError::BudgetExhausted)
        ));
    }
}

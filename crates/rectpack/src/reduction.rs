//! The task → rectangle reduction `R(j)` (Fig. 7).

use sap_core::{Instance, Placement, SapSolution, Span, TaskId};

/// The rectangle associated with a task:
/// `[span.lo, span.hi) × [bottom, top)` with `top = b(j)` and
/// `bottom = ℓ(j) = b(j) − d_j`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rect {
    /// Horizontal extent (the task's span).
    pub span: Span,
    /// Bottom ordinate `ℓ(j)` (the residual capacity).
    pub bottom: u64,
    /// Top ordinate `b(j)` (the bottleneneck capacity).
    pub top: u64,
}

impl Rect {
    /// Height of the rectangle (= the task's demand).
    pub fn height(&self) -> u64 {
        self.top - self.bottom
    }
}

/// Builds `R(j)` for task `j` of `instance`.
pub fn rect_of(instance: &Instance, j: TaskId) -> Rect {
    let top = instance.bottleneck(j);
    let bottom = top - instance.demand(j);
    Rect { span: instance.span(j), bottom, top }
}

/// True when the two rectangles are disjoint (as half-open boxes).
pub fn rects_disjoint(a: &Rect, b: &Rect) -> bool {
    !a.span.overlaps(b.span) || a.top <= b.bottom || b.top <= a.bottom
}

/// Converts a set of pairwise-disjoint rectangles back into a SAP
/// solution: each task is placed at its residual height `ℓ(j)`. The
/// result is feasible by construction (`ℓ(j) + d_j = b(j) ≤ c_e`).
pub fn packing_to_sap(instance: &Instance, chosen: &[TaskId]) -> SapSolution {
    SapSolution::new(
        chosen
            .iter()
            .map(|&j| Placement { task: j, height: instance.bottleneck(j) - instance.demand(j) })
            .collect(),
    )
}

/// Checks that `chosen` induces pairwise-disjoint rectangles.
pub fn is_valid_packing(instance: &Instance, chosen: &[TaskId]) -> bool {
    for (i, &a) in chosen.iter().enumerate() {
        for &b in &chosen[i + 1..] {
            if a == b || !rects_disjoint(&rect_of(instance, a), &rect_of(instance, b)) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use sap_core::{PathNetwork, Task};

    fn instance() -> Instance {
        // Fig. 7 flavour: a valley capacity profile.
        let net = PathNetwork::new(vec![10, 6, 4, 6, 10]).unwrap();
        let tasks = vec![
            Task::of(0, 5, 2, 1), // b = 4 → R = [0,5) × [2,4)
            Task::of(0, 2, 3, 1), // b = 6 → R = [0,2) × [3,6)
            Task::of(3, 5, 5, 1), // b = 6 → R = [3,5) × [1,6)
            Task::of(0, 1, 4, 1), // b = 10 → R = [0,1) × [6,10)
        ];
        Instance::new(net, tasks).unwrap()
    }

    #[test]
    fn rect_geometry_matches_definition() {
        let inst = instance();
        let r0 = rect_of(&inst, 0);
        assert_eq!((r0.bottom, r0.top), (2, 4));
        assert_eq!(r0.height(), 2);
        let r3 = rect_of(&inst, 3);
        assert_eq!((r3.bottom, r3.top), (6, 10));
    }

    #[test]
    fn disjointness_cases() {
        let inst = instance();
        let r0 = rect_of(&inst, 0);
        let r1 = rect_of(&inst, 1);
        let r2 = rect_of(&inst, 2);
        let r3 = rect_of(&inst, 3);
        // r0 [2,4) vs r1 [3,6): x-overlap and y-overlap ⇒ intersect.
        assert!(!rects_disjoint(&r0, &r1));
        // r0 [2,4) vs r2 [1,6): intersect.
        assert!(!rects_disjoint(&r0, &r2));
        // r1 and r2: spans [0,2) and [3,5) don't overlap ⇒ disjoint.
        assert!(rects_disjoint(&r1, &r2));
        // r1 [3,6) and r3 [6,10): touching at y=6 ⇒ disjoint (half-open).
        assert!(rects_disjoint(&r1, &r3));
        assert!(rects_disjoint(&r3, &r1), "disjointness is symmetric");
    }

    #[test]
    fn packing_projects_to_feasible_sap() {
        let inst = instance();
        assert!(is_valid_packing(&inst, &[1, 2, 3]));
        let sol = packing_to_sap(&inst, &[1, 2, 3]);
        sol.validate(&inst).unwrap();
        assert_eq!(sol.height_of(1), Some(3));
        assert_eq!(sol.height_of(3), Some(6));
        assert!(!is_valid_packing(&inst, &[0, 1]));
    }

    #[test]
    fn duplicate_ids_are_invalid() {
        let inst = instance();
        assert!(!is_valid_packing(&inst, &[1, 1]));
    }
}

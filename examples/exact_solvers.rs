//! The three independent exact solvers side by side:
//!
//! 1. the **state-space search** over grounded insertion orders
//!    (`sap_algs::exact` — works on any instance);
//! 2. the paper's **Lemma 13 proper-pair DP** (`sap_algs::lemma13` —
//!    the faithful transcription, poly-time for constant `L`);
//! 3. the **Chen–Hassin–Tzur column DP** (`sap_algs::sapu` — SAP-U with
//!    constant integer capacity, §1.1).
//!
//! Three algorithms, three completely different state spaces, one answer.
//!
//! Run with: `cargo run --release --example exact_solvers`

use std::time::Instant;

use storage_alloc::prelude::*;
use storage_alloc::sap_algs::{
    solve_exact_sap, solve_lemma13_dp, solve_sapu_exact_dp, ExactConfig, Lemma13Config,
};
use storage_alloc::sap_gen::{generate, CapacityProfile, DemandRegime, GenConfig};

fn main() -> Result<(), SapError> {
    println!("{:<8}{:>14}{:>14}{:>14}{:>10}", "seed", "search", "Lemma-13 DP", "column DP", "agree");
    for seed in 0..8u64 {
        // SAP-U with K = 6 so all three solvers apply.
        let instance = generate(
            &GenConfig {
                num_edges: 6,
                num_tasks: 11,
                profile: CapacityProfile::Uniform(6),
                regime: DemandRegime::Mixed,
                max_span: 4,
                max_weight: 25,
            },
            seed,
        );
        let ids = instance.all_ids();

        let t0 = Instant::now();
        let search = solve_exact_sap(&instance, &ids, ExactConfig::default())
            .expect("state budget")
            .weight(&instance);
        let t_search = t0.elapsed();

        let t0 = Instant::now();
        let dp13 = solve_lemma13_dp(&instance, &ids, Lemma13Config::default())
            .expect("state budget")
            .weight(&instance);
        let t_13 = t0.elapsed();

        let t0 = Instant::now();
        let column = solve_sapu_exact_dp(&instance, &ids).weight(&instance);
        let t_col = t0.elapsed();

        assert_eq!(search, dp13);
        assert_eq!(search, column);
        println!(
            "{:<8}{:>9} {:>4.1?}{:>9} {:>4.1?}{:>9} {:>4.1?}{:>10}",
            seed, search, t_search, dp13, t_13, column, t_col, "yes"
        );
    }
    println!("\nall three exact solvers agree on every instance — the search and the");
    println!("paper's DPs validate each other (differential testing).");
    Ok(())
}

//! Parameter tuning: sweep the paper's knobs (δ split threshold, ℓ class
//! width, small-task packer) on one workload, in parallel, and print the
//! landscape. Shows how the theory's "for every ε there is a δ" constants
//! behave as real dials.
//!
//! Run with: `cargo run --release --example parameter_tuning`

use storage_alloc::prelude::*;
use storage_alloc::sap_algs::{sweep_params, MediumParams};
use storage_alloc::sap_gen::{generate, CapacityProfile, DemandRegime, GenConfig};
use storage_alloc::ufpp;

fn main() -> Result<(), SapError> {
    let instance = generate(
        &GenConfig {
            num_edges: 24,
            num_tasks: 150,
            profile: CapacityProfile::RandomWalk { lo: 128, hi: 2048 },
            regime: DemandRegime::Mixed,
            max_span: 10,
            max_weight: 100,
        },
        42,
    );
    let (_, lp) = ufpp::lp_upper_bound(&instance, &instance.all_ids());
    println!(
        "workload: {} tasks on {} edges, LP bound {:.0}\n",
        instance.num_tasks(),
        instance.num_edges(),
        lp
    );

    // Grid: δ ∈ {1/4..1/64} × ℓ ∈ {2,4,8} × packer ∈ {LP, local-ratio}.
    let mut grid = Vec::new();
    for delta_inv in [4u64, 8, 16, 32, 64] {
        for ell in [2u32, 4, 8] {
            for algo in [SmallAlgo::LpRounding, SmallAlgo::LocalRatio] {
                grid.push(SapParams {
                    delta_small: Ratio::new(1, delta_inv),
                    small_algo: algo,
                    medium: MediumParams { ell, ..Default::default() },
                    ..Default::default()
                });
            }
        }
    }
    let mut results = sweep_params(&instance, &grid);
    results.sort_by_key(|(_, w)| std::cmp::Reverse(*w));

    println!("{:<10}{:<6}{:<14}{:>10}{:>12}", "δ_small", "ℓ", "small packer", "weight", "% of LP");
    for (params, weight) in results.iter().take(10) {
        println!(
            "1/{:<8}{:<6}{:<14}{:>10}{:>11.1}%",
            params.delta_small.den,
            params.medium.ell,
            format!("{:?}", params.small_algo),
            weight,
            100.0 * *weight as f64 / lp
        );
    }
    let (best, w) = &results[0];
    println!(
        "\nbest: δ=1/{}, ℓ={}, {:?} → weight {} \
         (the paper's proof-constants would be far more conservative)",
        best.delta_small.den, best.medium.ell, best.small_algo, w
    );
    Ok(())
}

//! Quickstart: build an instance, solve it with the paper's `(9+ε)`
//! algorithm, validate, and render the packing.
//!
//! Run with: `cargo run --release --example quickstart`

use storage_alloc::prelude::*;
use storage_alloc::sap_core::render_solution;

fn main() -> Result<(), SapError> {
    // A path with 6 edges. Think of edges as time slots and capacities as
    // the bytes of memory available during each slot.
    let network = PathNetwork::new(vec![16, 16, 8, 8, 16, 16])?;

    // Tasks: (first edge, one-past-last edge, demand, weight).
    let tasks = vec![
        Task::of(0, 6, 4, 40), // a long-lived buffer
        Task::of(0, 2, 8, 25), // a large, short-lived scratch area
        Task::of(2, 4, 4, 30), // sits in the capacity valley
        Task::of(3, 6, 6, 20),
        Task::of(1, 3, 2, 10),
        Task::of(4, 6, 8, 15),
    ];
    let instance = Instance::new(network, tasks)?;

    // The (9+ε)-approximation from Theorem 4 of the paper.
    let solution = storage_alloc::solve_sap(&instance);

    // Every solution passes the exact validator.
    solution.validate(&instance)?;

    println!("selected {} of {} tasks", solution.len(), instance.num_tasks());
    println!(
        "solution weight: {} (of {} total)",
        solution.weight(&instance),
        instance.weight_sum()
    );
    for p in &solution.placements {
        let t = instance.task(p.task);
        println!(
            "  task {:>2}: edges [{}, {}), demand {:>2}, height {:>2}, weight {}",
            p.task, t.span.lo, t.span.hi, t.demand, p.height, t.weight
        );
    }

    println!("\npacking (letters = tasks, dots = free space under capacity):");
    println!("{}", render_solution(&instance, &solution, 20));
    Ok(())
}

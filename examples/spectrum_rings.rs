//! Spectrum allocation on a ring network (§7 of the paper): tasks are
//! transmissions between ring nodes that must receive a **contiguous
//! block of frequencies** identical on every hop of their chosen route
//! (clockwise or counter-clockwise).
//!
//! Run with: `cargo run --release --example spectrum_rings`

use storage_alloc::prelude::*;
use storage_alloc::sap_algs::ring::{solve_ring, RingWinner};
use storage_alloc::sap_gen::{generate_ring, CapacityProfile, RingGenConfig};

fn main() -> Result<(), SapError> {
    let config = RingGenConfig {
        num_edges: 16,
        num_tasks: 120,
        profile: CapacityProfile::Random { lo: 40, hi: 200 },
        max_demand: 60,
        max_weight: 100,
    };

    println!("{:<8}{:>8}{:>14}{:>14}{:>12}{:>10}", "seed", "cut", "path branch", "knapsack", "returned", "winner");
    let mut path_wins = 0;
    let mut ks_wins = 0;
    for seed in 0..10u64 {
        let instance = generate_ring(&config, seed);
        let (solution, stats) = solve_ring(&instance, &RingParams::default());
        solution.validate(&instance)?;
        let winner = match stats.winner {
            RingWinner::CutPath => {
                path_wins += 1;
                "path"
            }
            RingWinner::ThroughKnapsack => {
                ks_wins += 1;
                "knapsack"
            }
        };
        println!(
            "{:<8}{:>8}{:>14}{:>14}{:>12}{:>10}",
            seed,
            stats.cut_edge,
            stats.path_weight,
            stats.knapsack_weight,
            solution.weight(&instance),
            winner
        );
    }
    println!(
        "\nLemma 18 in action: cut-path won {path_wins}×, through-knapsack won {ks_wins}×; \
         the algorithm always keeps the better branch."
    );
    Ok(())
}

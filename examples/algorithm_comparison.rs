//! Side-by-side comparison of every solver in the workspace across the
//! paper's three regimes — a miniature version of experiment `BL`.
//!
//! Run with: `cargo run --release --example algorithm_comparison`

use storage_alloc::prelude::*;
use storage_alloc::sap_algs::baselines::greedy_sap_best;
use storage_alloc::sap_algs::{solve_large, solve_medium, solve_small, MediumParams};
use storage_alloc::sap_gen::{generate, CapacityProfile, DemandRegime, GenConfig};
use storage_alloc::ufpp;

fn main() -> Result<(), SapError> {
    let regimes: [(&str, DemandRegime); 4] = [
        ("small (δ=1/16)", DemandRegime::Small { delta_inv: 16 }),
        ("medium", DemandRegime::Medium { delta_inv: 8 }),
        ("large (k=2)", DemandRegime::Large { k: 2 }),
        ("mixed", DemandRegime::Mixed),
    ];

    println!(
        "{:<16}{:>12}{:>12}{:>12}{:>12}{:>12}{:>10}",
        "regime", "combined", "small-alg", "medium-alg", "large-alg", "greedy", "% of LP"
    );
    for (name, regime) in regimes {
        let config = GenConfig {
            num_edges: 24,
            num_tasks: 120,
            profile: CapacityProfile::RandomWalk { lo: 256, hi: 2048 },
            regime,
            max_span: 10,
            max_weight: 100,
        };
        let inst = generate(&config, 7);
        let ids = inst.all_ids();

        let combined = storage_alloc::solve_sap(&inst);
        combined.validate(&inst)?;
        let small = solve_small(&inst, &ids, SmallAlgo::LpRounding);
        small.validate(&inst)?;
        let medium = solve_medium(&inst, &ids, MediumParams::default());
        medium.validate(&inst)?;
        let large = solve_large(&inst, &ids).map(|s| s.weight(&inst)).unwrap_or(0);
        let greedy = greedy_sap_best(&inst, &ids);
        let (_, lp) = ufpp::lp_upper_bound(&inst, &ids);

        let cw = combined.weight(&inst);
        println!(
            "{:<16}{:>12}{:>12}{:>12}{:>12}{:>12}{:>9.1}%",
            name,
            cw,
            small.weight(&inst),
            medium.weight(&inst),
            large,
            greedy.weight(&inst),
            100.0 * cw as f64 / lp
        );
    }
    println!(
        "\nNote: each regime-specific algorithm carries its guarantee only on its own \
         regime; the combined algorithm (Theorem 4) is the best of the three after \
         splitting the task set."
    );
    Ok(())
}

//! Banner advertising (another application from the paper's intro): a
//! banner of fixed height is displayed over a sequence of page views;
//! each advertiser wants a contiguous horizontal stripe of the banner
//! for a contiguous range of views. Uniform capacities make this SAP-U.
//!
//! Also demonstrates the figure-1 phenomenon: a set of ads that fits
//! *in aggregate* on every view (UFPP-feasible) may still be impossible
//! to lay out as stripes (SAP-infeasible).
//!
//! Run with: `cargo run --release --example banner_ads`

use storage_alloc::prelude::*;
use storage_alloc::sap_algs::{is_sap_feasible, solve_exact_sap, ExactConfig};
use storage_alloc::sap_core::render_solution;
use storage_alloc::sap_gen::{fig1b, generate, CapacityProfile, DemandRegime, GenConfig};

fn main() -> Result<(), SapError> {
    // Part 1: the Chen-et-al separation instance (paper Fig. 1b).
    let sep = fig1b();
    let all = sep.all_ids();
    println!("Fig. 1(b): {} ads, banner height 4, {} views", sep.num_tasks(), sep.num_edges());
    println!(
        "  aggregate fits every view (UFPP-feasible): {}",
        UfppSolution::new(all.clone()).validate(&sep).is_ok()
    );
    println!("  stripe layout of ALL ads exists (SAP-feasible): {}", is_sap_feasible(&sep, &all));
    let best = solve_exact_sap(&sep, &all, ExactConfig::default()).expect("tiny instance");
    println!("  best stripe layout sells {} of {} ads:", best.len(), sep.num_tasks());
    println!("{}", render_solution(&sep, &best, 8));

    // Part 2: a realistic banner campaign solved with the paper's
    // algorithm.
    let config = GenConfig {
        num_edges: 60,
        num_tasks: 250,
        profile: CapacityProfile::Uniform(1024),
        regime: DemandRegime::Mixed,
        max_span: 20,
        max_weight: 500,
    };
    let campaign = generate(&config, 99);
    let sol = storage_alloc::solve_sap(&campaign);
    sol.validate(&campaign)?;
    println!(
        "campaign: sold {} / {} ads, revenue {} / {} possible weight",
        sol.len(),
        campaign.num_tasks(),
        sol.weight(&campaign),
        campaign.weight_sum()
    );
    Ok(())
}

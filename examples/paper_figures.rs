//! Reconstructs the paper's figures in the terminal: the Fig. 1
//! UFPP-vs-SAP separations, the Fig. 5 gravity argument, and the Fig. 8
//! rectangle pentagon.
//!
//! Run with: `cargo run --release --example paper_figures`

use storage_alloc::prelude::*;
use storage_alloc::rectpack::{self, intersection_graph};
use storage_alloc::sap_algs::{is_sap_feasible, solve_exact_sap, ExactConfig};
use storage_alloc::sap_core::{apply_gravity, render_solution};
use storage_alloc::sap_gen::{fig1a, fig1b, fig8};

fn main() -> Result<(), SapError> {
    // ---- Fig. 1(a): capacities (2,4,2) ----
    let a = fig1a();
    println!("Fig. 1(a) — capacities {:?}", a.network().capacities());
    println!(
        "  all {} tasks UFPP-feasible: {} | SAP-feasible: {}",
        a.num_tasks(),
        UfppSolution::new(a.all_ids()).validate(&a).is_ok(),
        is_sap_feasible(&a, &a.all_ids()),
    );
    let best = solve_exact_sap(&a, &a.all_ids(), ExactConfig::default()).expect("tiny");
    println!("  best SAP subset ({} of {} tasks):", best.len(), a.num_tasks());
    println!("{}", render_solution(&a, &best, 6));

    // ---- Fig. 1(b): uniform capacity (Chen et al.) ----
    let b = fig1b();
    println!("Fig. 1(b) — uniform capacity 4, {} tasks", b.num_tasks());
    println!(
        "  UFPP-feasible: {} | SAP-feasible: {}",
        UfppSolution::new(b.all_ids()).validate(&b).is_ok(),
        is_sap_feasible(&b, &b.all_ids()),
    );
    let best = solve_exact_sap(&b, &b.all_ids(), ExactConfig::default()).expect("tiny");
    println!("  best SAP subset ({} of {}):", best.len(), b.num_tasks());
    println!("{}", render_solution(&b, &best, 6));

    // ---- Fig. 5: gravity ----
    let net = PathNetwork::uniform(5, 12)?;
    let tasks = vec![
        Task::of(0, 3, 3, 1),
        Task::of(2, 5, 2, 1),
        Task::of(1, 4, 4, 1),
        Task::of(0, 2, 1, 1),
    ];
    let inst = Instance::new(net, tasks)?;
    let floating = SapSolution::from_pairs([(0, 1), (1, 5), (2, 8), (3, 6)]);
    floating.validate(&inst)?;
    println!("Fig. 5 — before gravity:");
    println!("{}", render_solution(&inst, &floating, 12));
    let grounded = apply_gravity(&inst, &floating);
    println!("after gravity (every task rests on the floor or on another):");
    println!("{}", render_solution(&inst, &grounded, 12));

    // ---- Fig. 8: the pentagon ----
    let f = fig8();
    println!("Fig. 8 — a ½-large SAP solution of 5 tasks:");
    println!("{}", render_solution(&f.instance, &f.solution, 24));
    let adj = intersection_graph(&f.instance, &f.instance.all_ids());
    println!("rectangle intersection graph (R(j) = task pushed to its bottleneck):");
    for (v, nbrs) in adj.iter().enumerate() {
        println!("  R({v}) intersects {nbrs:?}");
    }
    let (order, degeneracy) = rectpack::degeneracy_order(&adj);
    let colors = rectpack::greedy_coloring(&adj, &order);
    println!(
        "  → a 5-cycle: degeneracy {degeneracy} (= 2k−2 for k=2), {} colours needed \
         (odd cycle ⇒ not 2-colourable); Lemma 17 is tight.",
        rectpack::coloring::num_colors(&colors)
    );
    Ok(())
}

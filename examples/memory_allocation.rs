//! Memory allocation scenario (the paper's motivating application):
//! edges are time slots, capacity is the size of a memory arena, tasks
//! are allocation requests that need a **contiguous** address range for
//! their whole lifetime. Compares the paper's algorithm against greedy
//! baselines and the LP upper bound on a day-long trace.
//!
//! Run with: `cargo run --release --example memory_allocation`

use storage_alloc::prelude::*;
use storage_alloc::sap_algs::baselines::{greedy_sap, GreedyOrder};
use storage_alloc::sap_gen::{generate, CapacityProfile, DemandRegime, GenConfig};
use storage_alloc::ufpp;

fn main() -> Result<(), SapError> {
    // 48 half-hour slots; the arena shrinks mid-day (another tenant).
    let slots = 48;
    let config = GenConfig {
        num_edges: slots,
        num_tasks: 400,
        profile: CapacityProfile::Valley { high: 1 << 20, low: 1 << 18 },
        regime: DemandRegime::Mixed,
        max_span: 16,
        max_weight: 1000,
    };
    let instance = generate(&config, 2016);
    println!(
        "arena trace: {} slots, {} allocation requests, capacities {}..{} KiB",
        slots,
        instance.num_tasks(),
        instance.network().min_capacity() >> 10,
        instance.network().max_capacity() >> 10,
    );

    // The paper's (9+ε) algorithm, with per-regime statistics.
    let params = SapParams::default();
    let (solution, stats) =
        storage_alloc::sap_algs::combined::solve_with_stats(&instance, &instance.all_ids(), &params);
    solution.validate(&instance)?;

    // Baselines.
    let ids = instance.all_ids();
    let by_weight = greedy_sap(&instance, &ids, GreedyOrder::WeightDesc);
    let by_density = greedy_sap(&instance, &ids, GreedyOrder::DensityDesc);

    // LP upper bound on the best possible (fractional relaxation).
    let (_, lp_bound) = ufpp::lp_upper_bound(&instance, &ids);

    println!("\ntask mix: {} small / {} medium / {} large (δ=1/16, δ'=1/2)",
        stats.classified.small.len(),
        stats.classified.medium.len(),
        stats.classified.large.len());
    println!("regime solutions: small {} | medium {} | large {} → winner: {}",
        stats.small_weight, stats.medium_weight, stats.large_weight, stats.winner);

    println!("\n{:<28}{:>12}{:>12}", "allocator", "weight", "% of LP");
    let row = |name: &str, w: u64| {
        println!("{:<28}{:>12}{:>11.1}%", name, w, 100.0 * w as f64 / lp_bound);
    };
    row("paper (9+eps) combined", solution.weight(&instance));
    row("greedy by weight", by_weight.weight(&instance));
    row("greedy by density", by_density.weight(&instance));
    println!("{:<28}{:>12}{:>11.1}%", "LP upper bound", lp_bound as u64, 100.0);

    Ok(())
}

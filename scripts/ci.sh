#!/usr/bin/env bash
# Tier-1 gate: everything a clean offline checkout must pass.
#
#   1. release build of the default workspace (path-only dependencies,
#      so this succeeds with no registry and no lockfile),
#   2. the full test suite,
#   3. the chaos suite: the same tests plus deterministic fault injection
#      (worker panics, failed LP solves, injected budget exhaustion),
#   4. the in-repo static-analysis pass with every lint denied,
#   5. the telemetry determinism gate: the same instance solved twice with
#      `--telemetry=json` must export byte-identical phase trees.
#   6. the bench smoke gate: the hermetic bench suites in --smoke mode must
#      emit schema-valid reports whose machine-independent invariants hold
#      (work-unit conservation across worker counts, byte-identical
#      parallel runs, the MWIS allocation-reduction bar, and the serve
#      suite's exact cache arithmetic). No wall-clock thresholds: timings
#      vary by machine, the invariants must not.
#   7. the serve determinism gate: the same NDJSON request stream (valid,
#      malformed, and duplicate lines mixed) fed through `sap serve` at
#      --workers 1 and --workers 8 must produce byte-identical stdout.
#   8. the lint baseline gate: `cargo xtask lint --format json` run twice
#      must be byte-identical (the export is schema-versioned and sorted),
#      and must match the committed `lint-baseline.json` — so CI fails on
#      *new* findings only, and a stale baseline is itself a failure.
#   9. the overload determinism gate: a mixed multi-tenant stream that
#      overruns both the global admission pool and one tenant's quota is
#      replayed twice at --workers 1 and once at --workers 8; all three
#      stdouts must be byte-identical (admission, degradation, and shed
#      decisions are width- and replay-invariant) and the stream must
#      actually shed (the gate must not pass vacuously).
#  10. the observability determinism gate: the same overloaded stream run
#      with per-batch snapshots interleaved into stdout, a snapshot side
#      channel, and a shutdown Chrome trace — twice at --workers 1 and
#      once at --workers 8. Stdout (responses + snapshot lines), the
#      snapshot file, and the trace must all be byte-identical across
#      the three runs, snapshots must actually appear, and the trace
#      must contain a non-vacuous span pair (more than the bare root).
#  11. the LP core gate: the sparse-simplex bench suite in --smoke mode
#      swept at --workers 1,8 must emit a schema-valid report whose
#      invariants hold (sparse/dense solution agreement, O(1) CSC build
#      allocations, byte-identical runs across worker widths, warm and
#      cold pivot traces identical and non-empty), and two back-to-back
#      runs of the suite must produce byte-identical reports (wall-clock
#      fields excluded — they are the only machine-dependent fields).
#  12. the network serve gate: `sap serve --listen` loopback e2e over
#      bash's /dev/tcp — three concurrent connections with interleaved
#      line-by-line writes (one stream includes a malformed line, one
#      repeats an instance so the shared cache crosses connections).
#      Each connection's response stream must be byte-identical to
#      feeding the same lines through batch-mode serve on stdin at both
#      --workers 1 and --workers 8, and the server must report exactly
#      three connections served.
#
# Run from anywhere inside the repository.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -q --features fault-injection"
cargo test -q --features fault-injection

echo "==> cargo run -p xtask -- lint --deny all"
cargo run --release -p xtask -- lint --deny all

echo "==> telemetry determinism gate"
tmpdir="$(mktemp -d)"
net_pid=""
trap '[ -n "$net_pid" ] && kill "$net_pid" 2>/dev/null; rm -rf "$tmpdir"' EXIT
./target/release/sap generate --edges 10 --tasks 40 --seed 7 > "$tmpdir/inst.json"
./target/release/sap solve "$tmpdir/inst.json" --algo combined --telemetry=json \
    2>"$tmpdir/tele-a.json" >/dev/null
./target/release/sap solve "$tmpdir/inst.json" --algo combined --telemetry=json \
    2>"$tmpdir/tele-b.json" >/dev/null
diff "$tmpdir/tele-a.json" "$tmpdir/tele-b.json" \
    || { echo "telemetry export is not deterministic" >&2; exit 1; }

echo "==> bench smoke gate"
cargo run --release -p sap-bench -- --suite core --smoke --workers 1,2 \
    --out "$tmpdir/bench-smoke.json"
cargo run --release -p sap-bench -- --suite serve --smoke --workers 1,2 \
    --out "$tmpdir/bench-serve-smoke.json"
cargo run --release -p sap-bench -- --suite overload --smoke --workers 1,2 \
    --out "$tmpdir/bench-overload-smoke.json"
cargo run --release -p sap-bench -- --suite obs --smoke --workers 1,2 \
    --out "$tmpdir/bench-obs-smoke.json"
cargo run --release -p sap-bench -- --suite net --smoke --workers 1,2 \
    --out "$tmpdir/bench-net-smoke.json"

echo "==> serve determinism gate"
# Each pretty-printed instance is flattened to one NDJSON line (instance
# documents contain no string values, so stripping whitespace is safe).
{
    ./target/release/sap generate --edges 8 --tasks 24 --seed 11 | tr -d ' \n'; echo
    echo '{not even json'
    ./target/release/sap generate --edges 6 --tasks 18 --seed 12 | tr -d ' \n'; echo
    ./target/release/sap generate --edges 8 --tasks 24 --seed 11 | tr -d ' \n'; echo
} > "$tmpdir/serve-req.ndjson"
./target/release/sap serve --workers 1 < "$tmpdir/serve-req.ndjson" \
    2>/dev/null > "$tmpdir/serve-w1.ndjson"
./target/release/sap serve --workers 8 < "$tmpdir/serve-req.ndjson" \
    2>/dev/null > "$tmpdir/serve-w8.ndjson"
diff "$tmpdir/serve-w1.ndjson" "$tmpdir/serve-w8.ndjson" \
    || { echo "serve output depends on the worker width" >&2; exit 1; }

echo "==> lint baseline gate"
cargo run --release -p xtask -- lint --format json > "$tmpdir/lint-a.json"
cargo run --release -p xtask -- lint --format json > "$tmpdir/lint-b.json"
diff "$tmpdir/lint-a.json" "$tmpdir/lint-b.json" \
    || { echo "lint json export is not deterministic" >&2; exit 1; }
diff "$tmpdir/lint-a.json" lint-baseline.json \
    || { echo "lint findings diverge from lint-baseline.json" >&2; \
         echo "regenerate with: cargo xtask lint --write-baseline lint-baseline.json" >&2; \
         exit 1; }

echo "==> overload determinism gate"
# A two-batch multi-tenant stream (blank line = batch boundary): tenant
# "hog" declares three 300-unit solves per batch against a 330/tick
# quota, tenant "mouse" stays modest, and the 700-unit global pool is
# oversubscribed — so the stream exercises full admission, both
# degradation rungs, and quota shedding.
hog_inst="$(./target/release/sap generate --edges 8 --tasks 24 --seed 21 | tr -d ' \n')"
mouse_inst="$(./target/release/sap generate --edges 6 --tasks 18 --seed 22 | tr -d ' \n')"
{
    for _ in 1 2; do
        for _ in 1 2 3; do
            echo "{\"instance\":$hog_inst,\"work_units\":300,\"tenant\":\"hog\"}"
            echo "{\"instance\":$mouse_inst,\"work_units\":40,\"tenant\":\"mouse\"}"
        done
        echo
    done
} > "$tmpdir/overload-req.ndjson"
overload_serve() {
    ./target/release/sap serve --workers "$1" --cache-size 0 \
        --max-inflight-units 700 --tenant-quota 330 \
        < "$tmpdir/overload-req.ndjson" 2>/dev/null
}
overload_serve 1 > "$tmpdir/overload-w1a.ndjson"
overload_serve 1 > "$tmpdir/overload-w1b.ndjson"
overload_serve 8 > "$tmpdir/overload-w8.ndjson"
diff "$tmpdir/overload-w1a.ndjson" "$tmpdir/overload-w1b.ndjson" \
    || { echo "overload replay is not deterministic" >&2; exit 1; }
diff "$tmpdir/overload-w1a.ndjson" "$tmpdir/overload-w8.ndjson" \
    || { echo "shed/degrade decisions depend on the worker width" >&2; exit 1; }
grep -q '"status":"shed"' "$tmpdir/overload-w1a.ndjson" \
    || { echo "overload stream never shed — gate is vacuous" >&2; exit 1; }

echo "==> observability determinism gate"
# The gate-9 overload stream again, now with the obs plane on: snapshot
# lines interleave into stdout every batch, mirror into a side file, and
# the service-lifetime profile exports as a Chrome trace at shutdown.
# All three artifacts must be byte-identical across a replay and across
# worker widths — cache warmth is already covered by the engine tests.
obs_serve() {
    ./target/release/sap serve --workers "$1" --cache-size 0 \
        --max-inflight-units 700 --tenant-quota 330 \
        --snapshot-every 1 --snapshot-file "$tmpdir/obs-snap-$2.ndjson" \
        --trace "$tmpdir/obs-trace-$2.json" \
        < "$tmpdir/overload-req.ndjson" 2>/dev/null
}
obs_serve 1 w1a > "$tmpdir/obs-w1a.ndjson"
obs_serve 1 w1b > "$tmpdir/obs-w1b.ndjson"
obs_serve 8 w8 > "$tmpdir/obs-w8.ndjson"
diff "$tmpdir/obs-w1a.ndjson" "$tmpdir/obs-w1b.ndjson" \
    || { echo "obs stdout (responses + snapshots) is not replay-deterministic" >&2; exit 1; }
diff "$tmpdir/obs-w1a.ndjson" "$tmpdir/obs-w8.ndjson" \
    || { echo "obs stdout depends on the worker width" >&2; exit 1; }
diff "$tmpdir/obs-snap-w1a.ndjson" "$tmpdir/obs-snap-w1b.ndjson" \
    || { echo "snapshot side channel is not replay-deterministic" >&2; exit 1; }
diff "$tmpdir/obs-snap-w1a.ndjson" "$tmpdir/obs-snap-w8.ndjson" \
    || { echo "snapshot side channel depends on the worker width" >&2; exit 1; }
diff "$tmpdir/obs-trace-w1a.json" "$tmpdir/obs-trace-w1b.json" \
    || { echo "trace export is not replay-deterministic" >&2; exit 1; }
diff "$tmpdir/obs-trace-w1a.json" "$tmpdir/obs-trace-w8.json" \
    || { echo "trace export depends on the worker width" >&2; exit 1; }
grep -q '"kind":"snapshot"' "$tmpdir/obs-w1a.ndjson" \
    || { echo "no snapshot lines on stdout — gate is vacuous" >&2; exit 1; }
grep -q '"kind":"snapshot"' "$tmpdir/obs-snap-w1a.ndjson" \
    || { echo "snapshot side channel is empty — gate is vacuous" >&2; exit 1; }
# A non-vacuous trace nests at least one named child span under root.
grep -q '"name":"medium","ph":"B"' "$tmpdir/obs-trace-w1a.json" \
    || { echo "trace holds no solver span pair — gate is vacuous" >&2; exit 1; }

echo "==> LP core gate"
cargo run --release -p sap-bench -- --suite lp --smoke --workers 1,8 \
    --out "$tmpdir/bench-lp-a.json"
cargo run --release -p sap-bench -- --suite lp --smoke --workers 1,8 \
    --out "$tmpdir/bench-lp-b.json"
# The validator already gated agreement / determinism / trace identity
# inside each run (a violated invariant exits nonzero before the file is
# written). Cross-run: strip the wall-clock fields, then byte-compare.
strip_wall() { sed -E 's/"[a-z_]*_?ms":[0-9]+\.[0-9]+,?//g' "$1"; }
diff <(strip_wall "$tmpdir/bench-lp-a.json") <(strip_wall "$tmpdir/bench-lp-b.json") \
    || { echo "lp suite report is not deterministic across runs" >&2; exit 1; }
grep -q '"traces_identical":true' "$tmpdir/bench-lp-a.json" \
    || { echo "lp trace family missing — gate is vacuous" >&2; exit 1; }

echo "==> network serve gate"
# Three concurrent /dev/tcp connections with interleaved writes. Bash
# cannot half-close a socket, so each stream ends with a blank line (a
# batch boundary, which flushes) and the expected number of responses is
# read back with a timeout before the fd is closed.
net_a="$(./target/release/sap generate --edges 8 --tasks 24 --seed 31 | tr -d ' \n')"
net_b="$(./target/release/sap generate --edges 6 --tasks 18 --seed 32 | tr -d ' \n')"
net_c="$(./target/release/sap generate --edges 7 --tasks 20 --seed 33 | tr -d ' \n')"
printf '%s\n%s\n' "$net_a" "$net_b"            > "$tmpdir/net-c1.ndjson"
printf '%s\n{oops\n%s\n' "$net_b" "$net_a"     > "$tmpdir/net-c2.ndjson"
printf '%s\n%s\n' "$net_c" "$net_c"            > "$tmpdir/net-c3.ndjson"
./target/release/sap serve --listen 127.0.0.1:0 --max-conns 3 \
    --port-file "$tmpdir/net-port" --workers 8 2>"$tmpdir/net-server.log" &
net_pid=$!
for _ in $(seq 1 200); do [ -s "$tmpdir/net-port" ] && break; sleep 0.05; done
[ -s "$tmpdir/net-port" ] || { echo "server never published its port" >&2; exit 1; }
net_addr="$(cat "$tmpdir/net-port")"
net_port="${net_addr##*:}"
exec 3<>"/dev/tcp/127.0.0.1/$net_port"
exec 4<>"/dev/tcp/127.0.0.1/$net_port"
exec 5<>"/dev/tcp/127.0.0.1/$net_port"
mapfile -t net_l1 < "$tmpdir/net-c1.ndjson"
mapfile -t net_l2 < "$tmpdir/net-c2.ndjson"
mapfile -t net_l3 < "$tmpdir/net-c3.ndjson"
for ((i = 0; i < 3; i++)); do
    [ "$i" -lt "${#net_l1[@]}" ] && printf '%s\n' "${net_l1[$i]}" >&3
    [ "$i" -lt "${#net_l2[@]}" ] && printf '%s\n' "${net_l2[$i]}" >&4
    [ "$i" -lt "${#net_l3[@]}" ] && printf '%s\n' "${net_l3[$i]}" >&5
    sleep 0.02
done
printf '\n' >&3
printf '\n' >&4
printf '\n' >&5
read_responses() { # fd count out
    local fd="$1" count="$2" out="$3" j line
    : > "$out"
    for ((j = 0; j < count; j++)); do
        IFS= read -t 15 -r -u "$fd" line \
            || { echo "timed out reading response $((j + 1)) on fd $fd" >&2; exit 1; }
        printf '%s\n' "$line" >> "$out"
    done
}
read_responses 3 2 "$tmpdir/net-r1.ndjson"
read_responses 4 3 "$tmpdir/net-r2.ndjson"
read_responses 5 2 "$tmpdir/net-r3.ndjson"
exec 3<&- 3>&- 4<&- 4>&- 5<&- 5>&-
wait "$net_pid" || { echo "serve --listen exited nonzero" >&2; exit 1; }
net_pid=""
grep -q 'net: 3 conns' "$tmpdir/net-server.log" \
    || { echo "server did not report 3 connections — gate is vacuous" >&2; exit 1; }
for w in 1 8; do
    for c in 1 2 3; do
        ./target/release/sap serve --workers "$w" < "$tmpdir/net-c$c.ndjson" \
            2>/dev/null > "$tmpdir/net-ref-w$w-c$c.ndjson"
        diff "$tmpdir/net-r$c.ndjson" "$tmpdir/net-ref-w$w-c$c.ndjson" \
            || { echo "connection $c stream diverges from batch mode at --workers $w" >&2; exit 1; }
    done
done

echo "ci: all gates passed"

//! Chaos suite: deterministic fault injection across every injection
//! point, asserting that *every* degradation path yields a
//! validator-clean solution and an accurate report.
//!
//! Requires the `fault-injection` cargo feature (`scripts/ci.sh` runs it;
//! without the feature this file compiles to nothing).

#![cfg(feature = "fault-injection")]

use storage_alloc::prelude::*;
use storage_alloc::sap_algs::try_solve;
use storage_alloc::sap_core::{ArmOutcome, Budget, CheckpointClass, FaultPlan};
use storage_alloc::sap_gen::{generate, CapacityProfile, DemandRegime, GenConfig};

fn workload(seed: u64) -> Instance {
    generate(
        &GenConfig {
            num_edges: 8,
            num_tasks: 28,
            profile: CapacityProfile::Random { lo: 16, hi: 64 },
            regime: DemandRegime::Mixed,
            max_span: 5,
            max_weight: 30,
        },
        seed,
    )
}

/// Shared postcondition: feasible solution, self-consistent report.
fn check(inst: &Instance, plan: FaultPlan) -> storage_alloc::sap_core::SolveReport {
    let budget = Budget::unlimited().with_fault_plan(plan);
    let (sol, report) =
        try_solve(inst, &inst.all_ids(), &SapParams::default(), &budget).unwrap();
    sol.validate(inst).unwrap_or_else(|e| panic!("{plan:?}: infeasible output: {e}"));
    assert_eq!(report.weight, sol.weight(inst), "{plan:?}: report weight mismatch");
    assert!(
        report.arm(report.winner).is_some(),
        "{plan:?}: winner {} missing from arms",
        report.winner
    );
    report
}

#[test]
fn injected_worker_panics_are_isolated_and_reported() {
    let inst = workload(1);
    for (idx, arm) in ["small", "medium", "large"].iter().enumerate() {
        let plan = FaultPlan { panic_worker: Some(idx), ..Default::default() };
        let report = check(&inst, plan);
        assert_eq!(
            report.arm(arm).unwrap().outcome,
            ArmOutcome::Panicked,
            "worker {idx}: {report:?}"
        );
        // The surviving arms complete and one of them wins — the panic
        // never escalates to the fallback chain, let alone the process.
        assert!(report.fallbacks.is_empty(), "worker {idx}: {report:?}");
        assert_ne!(report.winner, *arm, "worker {idx}: a panicked arm cannot win");
        for other in ["small", "medium", "large"] {
            if other != *arm {
                assert_eq!(report.arm(other).unwrap().outcome, ArmOutcome::Completed);
            }
        }
    }
}

#[test]
fn injected_lp_failures_degrade_the_small_arm_only() {
    let inst = workload(2);
    for nth in 1..=3u64 {
        let plan = FaultPlan { fail_lp_solve: Some(nth), ..Default::default() };
        let report = check(&inst, plan);
        let small = report.arm("small").unwrap();
        // The Nth LP solve may or may not exist (fewer strata than N);
        // when it fires, the arm must be labelled, never silently rounded.
        if small.outcome != ArmOutcome::Completed {
            assert_eq!(small.outcome, ArmOutcome::LpNonOptimal, "nth {nth}: {report:?}");
            assert_eq!(small.fallback, Some("greedy"));
        }
        assert_eq!(report.arm("medium").unwrap().outcome, ArmOutcome::Completed);
        assert_eq!(report.arm("large").unwrap().outcome, ArmOutcome::Completed);
    }
}

#[test]
fn first_lp_solve_failure_actually_fires() {
    // Guard against the previous test passing vacuously: on a small-heavy
    // workload the first LP solve exists, so the fault must fire.
    let inst = generate(
        &GenConfig {
            num_edges: 10,
            num_tasks: 40,
            profile: CapacityProfile::Random { lo: 32, hi: 128 },
            regime: DemandRegime::Small { delta_inv: 16 },
            max_span: 5,
            max_weight: 30,
        },
        7,
    );
    let plan = FaultPlan { fail_lp_solve: Some(1), ..Default::default() };
    let report = check(&inst, plan);
    assert_eq!(report.arm("small").unwrap().outcome, ArmOutcome::LpNonOptimal, "{report:?}");
}

#[test]
fn injected_exhaustion_at_any_class_degrades_cleanly() {
    let inst = workload(3);
    for class in [
        Some(CheckpointClass::LpPivot),
        Some(CheckpointClass::DpRow),
        Some(CheckpointClass::PackSweep),
        Some(CheckpointClass::Driver),
        None,
    ] {
        let plan = FaultPlan { exhaust_at: Some((class, 1)), ..Default::default() };
        let report = check(&inst, plan);
        // Whichever arms host checkpoints of that class must be exhausted,
        // and no arm may be misreported: exhausted arms carry no weight.
        for arm in &report.arms {
            if arm.outcome == ArmOutcome::BudgetExhausted {
                assert_eq!(arm.weight, 0, "{class:?}: {report:?}");
            }
        }
        assert!(!report.is_clean(), "{class:?}: exhaustion must be visible in the report");
    }
}

#[test]
fn exhaustion_on_every_checkpoint_falls_through_to_greedy() {
    let inst = workload(4);
    let plan = FaultPlan { exhaust_at: Some((None, 1)), ..Default::default() };
    let report = check(&inst, plan);
    for arm in ["small", "medium", "large"] {
        assert_eq!(report.arm(arm).unwrap().outcome, ArmOutcome::BudgetExhausted, "{report:?}");
    }
    // The Lemma 13 fallback checkpoints too, so it also trips; greedy
    // (checkpoint-free) terminates the chain.
    assert_eq!(report.fallbacks, vec!["lemma13", "greedy"]);
    assert_eq!(report.winner, "greedy");
}

#[test]
fn seeded_fault_plan_sweep_never_breaks_feasibility_or_reporting() {
    let inst = workload(5);
    for seed in 0..24u64 {
        let plan = FaultPlan::from_seed(seed);
        let report = check(&inst, plan);
        // A planned worker panic must surface as Panicked whenever the
        // arms actually dispatched (an exhaust-at fault can trip the
        // driver before the workers start).
        if let (Some(idx), None) = (plan.panic_worker, plan.exhaust_at) {
            let arm = ["small", "medium", "large"][idx];
            assert_eq!(
                report.arm(arm).unwrap().outcome,
                ArmOutcome::Panicked,
                "seed {seed}: {report:?}"
            );
        }
    }
}

#[test]
fn fault_plans_are_deterministic() {
    let inst = workload(6);
    for seed in [1u64, 9, 23] {
        let plan = FaultPlan::from_seed(seed);
        assert_eq!(plan, FaultPlan::from_seed(seed), "from_seed must be pure");
        let a = check(&inst, plan);
        let b = check(&inst, plan);
        assert_eq!(a, b, "seed {seed}: same plan must reproduce the same report");
        assert_eq!(a.to_json_string(), b.to_json_string());
    }
}

//! Chaos suite: deterministic fault injection across every injection
//! point, asserting that *every* degradation path yields a
//! validator-clean solution and an accurate report.
//!
//! Requires the `fault-injection` cargo feature (`scripts/ci.sh` runs it;
//! without the feature this file compiles to nothing).

#![cfg(feature = "fault-injection")]

use storage_alloc::prelude::*;
use storage_alloc::sap_algs::try_solve;
use storage_alloc::sap_core::{ArmOutcome, Budget, CheckpointClass, FaultPlan, Recorder};
use storage_alloc::sap_gen::{generate, CapacityProfile, DemandRegime, GenConfig};

fn workload(seed: u64) -> Instance {
    generate(
        &GenConfig {
            num_edges: 8,
            num_tasks: 28,
            profile: CapacityProfile::Random { lo: 16, hi: 64 },
            regime: DemandRegime::Mixed,
            max_span: 5,
            max_weight: 30,
        },
        seed,
    )
}

/// Shared postcondition: feasible solution, self-consistent report.
fn check(inst: &Instance, plan: FaultPlan) -> storage_alloc::sap_core::SolveReport {
    let budget = Budget::unlimited().with_fault_plan(plan);
    let (sol, report) =
        try_solve(inst, &inst.all_ids(), &SapParams::default(), &budget).unwrap();
    sol.validate(inst).unwrap_or_else(|e| panic!("{plan:?}: infeasible output: {e}"));
    assert_eq!(report.weight, sol.weight(inst), "{plan:?}: report weight mismatch");
    assert!(
        report.arm(report.winner).is_some(),
        "{plan:?}: winner {} missing from arms",
        report.winner
    );
    report
}

#[test]
fn injected_worker_panics_are_isolated_and_reported() {
    let inst = workload(1);
    for (idx, arm) in ["small", "medium", "large"].iter().enumerate() {
        let plan = FaultPlan { panic_worker: Some(idx), ..Default::default() };
        let report = check(&inst, plan);
        assert_eq!(
            report.arm(arm).unwrap().outcome,
            ArmOutcome::Panicked,
            "worker {idx}: {report:?}"
        );
        // The surviving arms complete and one of them wins — the panic
        // never escalates to the fallback chain, let alone the process.
        assert!(report.fallbacks.is_empty(), "worker {idx}: {report:?}");
        assert_ne!(report.winner, *arm, "worker {idx}: a panicked arm cannot win");
        for other in ["small", "medium", "large"] {
            if other != *arm {
                assert_eq!(report.arm(other).unwrap().outcome, ArmOutcome::Completed);
            }
        }
    }
}

#[test]
fn injected_lp_failures_degrade_the_small_arm_only() {
    let inst = workload(2);
    for nth in 1..=3u64 {
        let plan = FaultPlan { fail_lp_solve: Some(nth), ..Default::default() };
        let report = check(&inst, plan);
        let small = report.arm("small").unwrap();
        // The Nth LP solve may or may not exist (fewer strata than N);
        // when it fires, the arm must be labelled, never silently rounded.
        if small.outcome != ArmOutcome::Completed {
            assert_eq!(small.outcome, ArmOutcome::LpNonOptimal, "nth {nth}: {report:?}");
            assert_eq!(small.fallback, Some("greedy"));
        }
        assert_eq!(report.arm("medium").unwrap().outcome, ArmOutcome::Completed);
        assert_eq!(report.arm("large").unwrap().outcome, ArmOutcome::Completed);
    }
}

#[test]
fn first_lp_solve_failure_actually_fires() {
    // Guard against the previous test passing vacuously: on a small-heavy
    // workload the first LP solve exists, so the fault must fire.
    let inst = generate(
        &GenConfig {
            num_edges: 10,
            num_tasks: 40,
            profile: CapacityProfile::Random { lo: 32, hi: 128 },
            regime: DemandRegime::Small { delta_inv: 16 },
            max_span: 5,
            max_weight: 30,
        },
        7,
    );
    let plan = FaultPlan { fail_lp_solve: Some(1), ..Default::default() };
    let report = check(&inst, plan);
    assert_eq!(report.arm("small").unwrap().outcome, ArmOutcome::LpNonOptimal, "{report:?}");
}

#[test]
fn injected_refactor_failures_degrade_the_small_arm() {
    // A singular basis out of the Nth refactorization must be handled
    // exactly like a pivot-limited LP: the small arm degrades to greedy,
    // the report labels it, and telemetry attributes the cause. Every
    // solve refactorizes once before its first pivot, so `Some(1)` fires
    // on every stratum deterministically.
    let inst = generate(
        &GenConfig {
            num_edges: 10,
            num_tasks: 40,
            profile: CapacityProfile::Random { lo: 32, hi: 128 },
            regime: DemandRegime::Small { delta_inv: 16 },
            max_span: 5,
            max_weight: 30,
        },
        7,
    );
    let rec = Recorder::new();
    let plan = FaultPlan { fail_refactor: Some(1), ..Default::default() };
    let budget =
        Budget::unlimited().with_fault_plan(plan).with_telemetry(rec.handle());
    let (sol, report) =
        try_solve(&inst, &inst.all_ids(), &SapParams::default(), &budget).unwrap();
    sol.validate(&inst).unwrap();
    let small = report.arm("small").unwrap();
    assert_eq!(small.outcome, ArmOutcome::LpNonOptimal, "{report:?}");
    assert_eq!(small.fallback, Some("greedy"), "{report:?}");
    // Non-vacuity: the counter proves a refactorization actually failed
    // (rather than the arm degrading for some unrelated reason).
    let tele = rec.to_json_string();
    assert!(
        tele.contains("lp.refactor_failed"),
        "telemetry must attribute the singular basis: {tele}"
    );
}

#[test]
fn injected_exhaustion_at_any_class_degrades_cleanly() {
    let inst = workload(3);
    for class in [
        Some(CheckpointClass::LpPivot),
        Some(CheckpointClass::DpRow),
        Some(CheckpointClass::PackSweep),
        Some(CheckpointClass::Driver),
        None,
    ] {
        let plan = FaultPlan { exhaust_at: Some((class, 1)), ..Default::default() };
        let report = check(&inst, plan);
        // Whichever arms host checkpoints of that class must be exhausted,
        // and no arm may be misreported: exhausted arms carry no weight.
        for arm in &report.arms {
            if arm.outcome == ArmOutcome::BudgetExhausted {
                assert_eq!(arm.weight, 0, "{class:?}: {report:?}");
            }
        }
        assert!(!report.is_clean(), "{class:?}: exhaustion must be visible in the report");
    }
}

#[test]
fn exhaustion_on_every_checkpoint_falls_through_to_greedy() {
    let inst = workload(4);
    let plan = FaultPlan { exhaust_at: Some((None, 1)), ..Default::default() };
    let report = check(&inst, plan);
    for arm in ["small", "medium", "large"] {
        assert_eq!(report.arm(arm).unwrap().outcome, ArmOutcome::BudgetExhausted, "{report:?}");
    }
    // The Lemma 13 fallback checkpoints too, so it also trips; greedy
    // (checkpoint-free) terminates the chain.
    assert_eq!(report.fallbacks, vec!["lemma13", "greedy"]);
    assert_eq!(report.winner, "greedy");
}

#[test]
fn seeded_fault_plan_sweep_never_breaks_feasibility_or_reporting() {
    let inst = workload(5);
    for seed in 0..24u64 {
        let plan = FaultPlan::from_seed(seed);
        let report = check(&inst, plan);
        // A planned worker panic must surface as Panicked whenever the
        // arms actually dispatched (an exhaust-at fault can trip the
        // driver before the workers start).
        if let (Some(idx), None) = (plan.panic_worker, plan.exhaust_at) {
            let arm = ["small", "medium", "large"][idx];
            assert_eq!(
                report.arm(arm).unwrap().outcome,
                ArmOutcome::Panicked,
                "seed {seed}: {report:?}"
            );
        }
    }
}

#[test]
fn fault_plans_are_deterministic() {
    let inst = workload(6);
    for seed in [1u64, 9, 23] {
        let plan = FaultPlan::from_seed(seed);
        assert_eq!(plan, FaultPlan::from_seed(seed), "from_seed must be pure");
        let a = check(&inst, plan);
        let b = check(&inst, plan);
        assert_eq!(a, b, "seed {seed}: same plan must reproduce the same report");
        assert_eq!(a.to_json_string(), b.to_json_string());
    }
}

// ---------------------------------------------------------------------
// Serve-level injections (ISSUE 7): panic_request, fail_admission,
// exhaust_tenant_at.
// ---------------------------------------------------------------------

mod serve_chaos {
    use storage_alloc::serve::{ServeEngine, ServeOptions};
    use storage_alloc::sap_core::FaultPlan;

    fn inst(weight: u64) -> String {
        format!(
            r#"{{"capacities":[4,6,4],"tasks":[{{"lo":0,"hi":2,"demand":2,"weight":{weight}}},{{"lo":1,"hi":3,"demand":3,"weight":8}}]}}"#
        )
    }

    /// Five distinct solvable lines (distinct weights → distinct cache
    /// keys, so every line dispatches its own solve).
    fn batch() -> Vec<String> {
        (1..=5u64).map(|w| inst(w * 10)).collect()
    }

    fn run(opts: ServeOptions, batches: &[Vec<String>]) -> (Vec<String>, ServeEngine) {
        let mut engine = ServeEngine::new(opts);
        let mut out = Vec::new();
        for b in batches {
            let refs: Vec<&str> = b.iter().map(String::as_str).collect();
            out.extend(engine.process_batch(&refs));
        }
        (out, engine)
    }

    #[test]
    fn panicking_request_degrades_alone_and_neighbours_are_byte_identical() {
        let batches = vec![batch()];
        let (clean, _) = run(ServeOptions::default(), &batches);
        for workers in [1, 2, 8] {
            let opts = ServeOptions {
                workers,
                fault: FaultPlan { panic_request: Some(3), ..Default::default() },
                ..Default::default()
            };
            let (faulted, engine) = run(opts, &batches);
            assert_eq!(faulted.len(), clean.len());
            for (i, (f, c)) in faulted.iter().zip(&clean).enumerate() {
                if i == 2 {
                    // The third dispatched solve is the third line here
                    // (all lines are novel leaders).
                    assert!(
                        f.starts_with(r#"{"v":1,"status":"error""#),
                        "workers={workers} line {i}: {f}"
                    );
                    assert!(f.contains("solver panicked"), "workers={workers}: {f}");
                    assert!(f.contains("injected panic_request"), "workers={workers}: {f}");
                } else {
                    assert_eq!(f, c, "workers={workers}: fault leaked into line {i}");
                }
            }
            assert_eq!(engine.stats.errors, 1);
            assert_eq!(engine.stats.ok, 4);
        }
    }

    #[test]
    fn panic_request_seq_spans_batches_and_skips_cache_hits() {
        // Line layout: batch 1 = [A, B], batch 2 = [A(cache hit), C].
        // Executed solves are A=#1, B=#2, C=#3: the injection must hit C
        // even though it is the 4th request line.
        let a = inst(10);
        let b = inst(20);
        let c = inst(30);
        let batches = vec![vec![a.clone(), b], vec![a, c]];
        let opts = ServeOptions {
            fault: FaultPlan { panic_request: Some(3), ..Default::default() },
            ..Default::default()
        };
        let (out, engine) = run(opts, &batches);
        assert!(out[0].starts_with(r#"{"v":1,"status":"ok""#));
        assert!(out[1].starts_with(r#"{"v":1,"status":"ok""#));
        assert_eq!(out[2], out[0], "cache hit must replay the healthy response");
        assert!(out[3].contains("injected panic_request"), "{}", out[3]);
        assert_eq!(engine.stats.cache_hits, 1);
        assert_eq!(engine.stats.errors, 1);
    }

    #[test]
    fn injected_admission_failure_sheds_the_nth_request_as_capacity() {
        // No limits configured at all: only the injection can shed, and
        // it must present as a capacity refusal on exactly the 2nd
        // admission decision.
        let batches = vec![batch()];
        let opts = ServeOptions {
            fault: FaultPlan { fail_admission: Some(2), ..Default::default() },
            ..Default::default()
        };
        let (out, engine) = run(opts, &batches);
        assert_eq!(out[1], r#"{"v":1,"status":"shed","reason":"capacity"}"#);
        for (i, line) in out.iter().enumerate() {
            if i != 1 {
                assert!(line.starts_with(r#"{"v":1,"status":"ok""#), "line {i}: {line}");
            }
        }
        let adm = engine.admission_stats();
        assert_eq!(adm.shed_capacity, 1);
        assert_eq!(adm.admitted, 4);
        assert_eq!(engine.stats.shed, 1);
    }

    #[test]
    fn injected_tenant_exhaustion_drains_buckets_at_the_nth_refill() {
        // Quota 1000 comfortably fits every request; draining the
        // buckets at refill tick 2 (= batch 2) starves the tenant for
        // that batch only — tick 3 refills and service resumes.
        let line = |w: u64| format!(r#"{{"instance":{},"tenant":"t","work_units":50}}"#, inst(w));
        let batches: Vec<Vec<String>> =
            (0..3).map(|b| vec![line(10 + b), line(20 + b)]).collect();
        let opts = ServeOptions {
            tenant_quota: Some(1000),
            cache_size: 0,
            fault: FaultPlan { exhaust_tenant_at: Some(2), ..Default::default() },
            ..Default::default()
        };
        let (out, engine) = run(opts, &batches);
        // Batch 1: both ok. Batch 2: bucket drained to 0 → quota sheds.
        // Batch 3: refilled → both ok again.
        for i in [0, 1, 4, 5] {
            assert!(out[i].starts_with(r#"{"v":1,"status":"ok""#), "line {i}: {}", out[i]);
        }
        for i in [2, 3] {
            assert_eq!(out[i], r#"{"v":1,"status":"shed","reason":"quota"}"#, "line {i}");
        }
        let adm = engine.admission_stats();
        assert_eq!(adm.refills, 3);
        assert_eq!(adm.shed_quota, 2);
        assert_eq!(adm.admitted, 4);
    }
}

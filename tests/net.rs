//! End-to-end tests for `sap serve --listen` — the persistent network
//! mode — driven against the real binary over real loopback sockets.
//!
//! The ISSUE-10 acceptance bar enforced here: each connection's
//! response stream is byte-identical to running the same lines through
//! batch-mode serve, with ≥3 concurrent connections writing
//! interleaved chunks, at `--workers` 1 vs 8, across shard counts, and
//! with the cache warmed by *other* connections. Plus the input-path
//! hardening over sockets: CRLF framing, a final line without a
//! trailing newline, and the `--max-line-bytes` cap.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn inst_a() -> String {
    r#"{"capacities":[4,6,4],"tasks":[{"lo":0,"hi":2,"demand":2,"weight":10},{"lo":1,"hi":3,"demand":3,"weight":8}]}"#.to_string()
}

fn inst_b() -> String {
    r#"{"capacities":[8,8],"tasks":[{"lo":0,"hi":1,"demand":3,"weight":5},{"lo":1,"hi":2,"demand":8,"weight":9},{"lo":0,"hi":2,"demand":4,"weight":7}]}"#.to_string()
}

/// `inst_a` spelled with different key order — same canonical instance.
fn inst_a_respelled() -> String {
    r#"{ "tasks": [ {"weight":10,"demand":2,"hi":2,"lo":0}, {"hi":3,"weight":8,"lo":1,"demand":3} ], "capacities": [4, 6, 4] }"#.to_string()
}

struct Server {
    child: Child,
    addr: SocketAddr,
}

/// Spawns `sap serve --listen 127.0.0.1:0` with a unique port file and
/// waits for the bound address.
fn spawn_server(tag: &str, extra: &[&str]) -> Server {
    let port_file: PathBuf =
        std::env::temp_dir().join(format!("sap-net-{}-{tag}.addr", std::process::id()));
    let _ = std::fs::remove_file(&port_file);
    let child = Command::new(env!("CARGO_BIN_EXE_sap"))
        .arg("serve")
        .args(["--listen", "127.0.0.1:0", "--port-file"])
        .arg(&port_file)
        .args(extra)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn sap serve --listen");
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        if let Ok(contents) = std::fs::read_to_string(&port_file) {
            if let Ok(addr) = contents.trim().parse::<SocketAddr>() {
                break addr;
            }
        }
        assert!(Instant::now() < deadline, "server never wrote {port_file:?}");
        std::thread::sleep(Duration::from_millis(10));
    };
    let _ = std::fs::remove_file(&port_file);
    Server { child, addr }
}

/// Waits for the server to exit (it stops after `--max-conns`) and
/// returns its stderr.
fn finish_server(server: Server) -> String {
    let out = server.child.wait_with_output().expect("server exit");
    assert!(out.status.success(), "server failed: {out:?}");
    String::from_utf8(out.stderr).expect("utf8 stderr")
}

/// One client conversation: write the byte chunks (pausing between them
/// so concurrent connections genuinely interleave on the accept side),
/// half-close, and read the full response stream.
fn converse(addr: SocketAddr, chunks: &[&[u8]], pause: Duration) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    for (i, chunk) in chunks.iter().enumerate() {
        stream.write_all(chunk).expect("write");
        stream.flush().expect("flush");
        if !pause.is_zero() && i + 1 < chunks.len() {
            std::thread::sleep(pause);
        }
    }
    stream.shutdown(Shutdown::Write).expect("half-close");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read responses");
    response
}

/// Batch-mode reference: the same bytes through `sap serve` on stdin.
fn batch_reference(args: &[&str], input: &[u8]) -> String {
    let mut child = Command::new(env!("CARGO_BIN_EXE_sap"))
        .arg("serve")
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn sap serve");
    child.stdin.take().expect("stdin").write_all(input).expect("write stdin");
    let out = child.wait_with_output().expect("sap serve exit");
    assert!(out.status.success(), "sap serve failed: {out:?}");
    String::from_utf8(out.stdout).expect("utf8 stdout")
}

/// Splits a byte stream into chunks that deliberately cut lines in
/// half, so TCP segmentation never aligns with line boundaries.
fn misaligned_chunks(bytes: &[u8]) -> Vec<&[u8]> {
    let step = (bytes.len() / 5).max(1) | 1; // odd step ≠ line length
    bytes.chunks(step).collect()
}

#[test]
fn three_concurrent_connections_match_batch_mode_at_w1_and_w8() {
    // Three different duplicate-heavy streams: the shared cache gets
    // warmed by *other* connections mid-flight, worker width varies,
    // and every write is chopped mid-line. None of it may change bytes.
    let streams: Vec<String> = vec![
        format!("{}\n{}\n{}\n", inst_a(), inst_b(), inst_a()),
        format!("{}\n{}\n{}\n", inst_b(), inst_a_respelled(), inst_b()),
        format!("{}\n{{oops\n{}\n", inst_a(), inst_b()),
    ];
    for workers in ["1", "8"] {
        let expected: Vec<String> = streams
            .iter()
            .map(|s| batch_reference(&["--workers", workers], s.as_bytes()))
            .collect();
        let server =
            spawn_server(&format!("conc-w{workers}"), &["--max-conns", "3", "--workers", workers]);
        let addr = server.addr;
        let handles: Vec<_> = streams
            .iter()
            .map(|stream| {
                let bytes = stream.clone().into_bytes();
                std::thread::spawn(move || {
                    converse(addr, &misaligned_chunks(&bytes), Duration::from_millis(15))
                })
            })
            .collect();
        let got: Vec<String> =
            handles.into_iter().map(|h| h.join().expect("client thread")).collect();
        for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
            assert_eq!(g, e, "workers={workers} conn {i} diverged from batch mode");
        }
        let stderr = finish_server(server);
        assert!(stderr.contains("net: 3 conns"), "{stderr}");
    }
}

#[test]
fn crlf_and_final_unterminated_line_over_a_socket() {
    let lf = format!("{}\n{}\n", inst_a(), inst_b());
    let expected = batch_reference(&[], lf.as_bytes());
    let crlf_no_final = format!("{}\r\n{}", inst_a(), inst_b());
    let server = spawn_server("crlf", &["--max-conns", "1"]);
    let got = converse(server.addr, &[crlf_no_final.as_bytes()], Duration::ZERO);
    assert_eq!(got, expected, "CRLF + missing final newline diverged over the socket");
    finish_server(server);
}

#[test]
fn oversized_socket_line_is_answered_in_order_and_discarded() {
    // 64 KiB of junk streamed between two good lines with a 256-byte
    // cap: the server answers all three in order without buffering the
    // junk, and the oversized count reaches the shutdown summary.
    let junk = vec![b'z'; 64 * 1024];
    let first = format!("{}\n", inst_a());
    let last = format!("{}\n", inst_b());
    let server = spawn_server("oversized", &["--max-conns", "1", "--max-line-bytes", "256"]);
    let mut chunks: Vec<&[u8]> = vec![first.as_bytes()];
    chunks.extend(junk.chunks(8 * 1024));
    let newline = b"\n";
    chunks.push(newline);
    chunks.push(last.as_bytes());
    let got = converse(server.addr, &chunks, Duration::ZERO);
    let lines: Vec<&str> = got.lines().collect();
    assert_eq!(lines.len(), 3, "{got}");
    assert!(lines[0].starts_with(r#"{"v":1,"status":"ok""#), "{}", lines[0]);
    assert_eq!(lines[1], r#"{"v":1,"status":"error","reason":"oversized"}"#);
    assert!(lines[2].starts_with(r#"{"v":1,"status":"ok""#), "{}", lines[2]);
    let stderr = finish_server(server);
    assert!(stderr.contains("1 oversized"), "{stderr}");
}

#[test]
fn cache_warmth_from_another_connection_never_changes_bytes() {
    // Connection 2 replays connection 1's request against the shared
    // sharded cache: identical bytes, and the shutdown summary proves
    // the second answer was a cross-connection cache hit.
    let line = format!("{}\n", inst_a());
    let expected = batch_reference(&[], line.as_bytes());
    let server = spawn_server("warm", &["--max-conns", "2"]);
    let first = converse(server.addr, &[line.as_bytes()], Duration::ZERO);
    let second = converse(server.addr, &[line.as_bytes()], Duration::ZERO);
    assert_eq!(first, expected);
    assert_eq!(second, expected, "warm cross-connection replay diverged");
    let stderr = finish_server(server);
    assert!(stderr.contains("cache 1 hits / 1 misses"), "{stderr}");
}

#[test]
fn shard_count_is_invariant_over_the_socket() {
    let stream = format!("{}\n{}\n{}\n{}\n", inst_a(), inst_b(), inst_a_respelled(), inst_a());
    let expected = batch_reference(&[], stream.as_bytes());
    for shards in ["1", "2", "8"] {
        let server =
            spawn_server(&format!("shards{shards}"), &["--max-conns", "1", "--cache-shards", shards]);
        let got = converse(server.addr, &[stream.as_bytes()], Duration::ZERO);
        assert_eq!(got, expected, "cache-shards={shards} diverged over the socket");
        finish_server(server);
    }
}

#[test]
fn blank_line_flushes_a_batch_mid_connection() {
    // A client that needs answers *before* half-closing: write a batch,
    // terminate it with a blank line, and read the responses while the
    // connection stays open for writing.
    let batch = format!("{}\n{}\n\n", inst_a(), inst_b());
    let expected = batch_reference(&[], batch.as_bytes());
    let server = spawn_server("flush", &["--max-conns", "1"]);
    let mut stream = TcpStream::connect(server.addr).expect("connect");
    stream.write_all(batch.as_bytes()).expect("write");
    stream.flush().expect("flush");
    let mut got = Vec::new();
    let mut byte = [0u8; 1];
    let mut newlines = 0;
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    while newlines < 2 {
        let n = stream.read(&mut byte).expect("read");
        assert!(n > 0, "server closed before both responses");
        got.extend_from_slice(&byte[..n]);
        if byte[0] == b'\n' {
            newlines += 1;
        }
    }
    assert_eq!(String::from_utf8(got).expect("utf8"), expected);
    stream.shutdown(Shutdown::Write).expect("half-close");
    drop(stream);
    finish_server(server);
}

#[test]
fn net_telemetry_counters_are_exported() {
    let stream = format!("{}\n{}\n", inst_a(), inst_b());
    let server = spawn_server("tele", &["--max-conns", "1", "--telemetry=json"]);
    let _ = converse(server.addr, &[stream.as_bytes()], Duration::ZERO);
    let stderr = finish_server(server);
    for needle in [
        r#""net.conns":1"#,
        r#""net.lines":2"#,
        r#""net.responses":2"#,
        r#""net.oversized":0"#,
        "net.bytes_in",
        "net.bytes_out",
    ] {
        assert!(stderr.contains(needle), "stderr missing {needle}:\n{stderr}");
    }
    assert!(stderr.contains("net: 1 conns"), "{stderr}");
}

#[test]
fn listen_rejects_the_obs_plane_flags() {
    for flag in ["--obs", "--snapshot-every"] {
        let mut args = vec!["serve", "--listen", "127.0.0.1:0", flag];
        if flag == "--snapshot-every" {
            args.push("1");
        }
        let out = Command::new(env!("CARGO_BIN_EXE_sap"))
            .args(&args)
            .stdin(Stdio::null())
            .stderr(Stdio::piped())
            .output()
            .expect("run sap serve");
        assert!(!out.status.success(), "{flag} must be rejected in net mode");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("--listen is incompatible"), "{stderr}");
    }
}

#[test]
fn listen_rejects_zero_max_conns() {
    let out = Command::new(env!("CARGO_BIN_EXE_sap"))
        .args(["serve", "--listen", "127.0.0.1:0", "--max-conns", "0"])
        .stdin(Stdio::null())
        .stderr(Stdio::piped())
        .output()
        .expect("run sap serve");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--max-conns"), "{stderr}");
}

//! Budget semantics of the fault-tolerant solve driver (always-on: no
//! `fault-injection` feature needed).
//!
//! * An unlimited budget reproduces the infallible facade exactly.
//! * Work-unit budgets degrade *deterministically*: same instance, same
//!   limit → byte-identical solution and report (the work-unit path has
//!   no wall-clock branch).
//! * Every degradation path still yields a validator-clean solution, and
//!   the report says what happened.

use storage_alloc::prelude::*;
use storage_alloc::sap_core::{ArmOutcome, Budget};
use storage_alloc::sap_gen::{generate, CapacityProfile, DemandRegime, GenConfig};
use storage_alloc::{solve_sap, try_solve_sap, try_solve_sap_practical};

fn workload(seed: u64, regime: DemandRegime) -> Instance {
    generate(
        &GenConfig {
            num_edges: 10,
            num_tasks: 40,
            profile: CapacityProfile::Random { lo: 16, hi: 64 },
            regime,
            max_span: 5,
            max_weight: 30,
        },
        seed,
    )
}

#[test]
fn unlimited_budget_matches_infallible_facade() {
    for seed in 0..4 {
        let inst = workload(seed, DemandRegime::Mixed);
        let plain = solve_sap(&inst);
        let (budgeted, report) = try_solve_sap(&inst, &Budget::unlimited()).unwrap();
        budgeted.validate(&inst).unwrap();
        assert_eq!(plain.weight(&inst), budgeted.weight(&inst), "seed {seed}");
        assert_eq!(report.weight, budgeted.weight(&inst));
        assert!(report.fallbacks.is_empty(), "seed {seed}: {report:?}");
    }
}

#[test]
fn work_unit_budgets_degrade_deterministically() {
    // Same seed + same work-unit limit ⇒ byte-identical solutions and
    // reports, across the whole degradation range.
    let inst = workload(9, DemandRegime::Mixed);
    for limit in [0u64, 7, 50, 500, 5_000, 50_000] {
        let (sol_a, rep_a) =
            try_solve_sap(&inst, &Budget::unlimited().with_work_units(limit)).unwrap();
        let (sol_b, rep_b) =
            try_solve_sap(&inst, &Budget::unlimited().with_work_units(limit)).unwrap();
        sol_a.validate(&inst).unwrap();
        assert_eq!(sol_a, sol_b, "limit {limit}: solutions must be identical");
        assert_eq!(rep_a, rep_b, "limit {limit}: reports must be identical");
        assert_eq!(
            rep_a.to_json_string(),
            rep_b.to_json_string(),
            "limit {limit}: report JSON must be byte-identical"
        );
    }
}

#[test]
fn degradation_is_identical_across_worker_counts() {
    // Fan-out width must not perturb deterministic degradation: the
    // parallel map splits a metered budget into fixed per-item shares,
    // so the same work-unit limit yields byte-identical solutions and
    // reports at 1, 2, and 8 workers — including runs that trip mid-arm.
    let inst = workload(12, DemandRegime::Mixed);
    let ids = inst.all_ids();
    for limit in [50u64, 5_000, u64::MAX] {
        let runs: Vec<_> = [1usize, 2, 8]
            .into_iter()
            .map(|workers| {
                let params = storage_alloc::sap_algs::SapParams {
                    workers,
                    ..Default::default()
                };
                let budget = Budget::unlimited().with_work_units(limit);
                let (sol, report) =
                    storage_alloc::sap_algs::try_solve(&inst, &ids, &params, &budget).unwrap();
                sol.validate(&inst).unwrap();
                (sol, report.to_json_string())
            })
            .collect();
        for (workers, run) in [2usize, 8].iter().zip(&runs[1..]) {
            assert_eq!(run.0, runs[0].0, "limit {limit}, workers {workers}: solution differs");
            assert_eq!(run.1, runs[0].1, "limit {limit}, workers {workers}: report differs");
        }
    }
}

#[test]
fn exhausted_budget_still_yields_feasible_solution_and_says_so() {
    let inst = workload(3, DemandRegime::Mixed);
    let (sol, report) = try_solve_sap(&inst, &Budget::unlimited().with_work_units(0)).unwrap();
    sol.validate(&inst).unwrap();
    assert!(!sol.is_empty(), "greedy fallback packs something");
    assert!(!report.is_clean());
    assert!(report
        .arms
        .iter()
        .any(|a| a.outcome == ArmOutcome::BudgetExhausted));
    assert_eq!(report.winner, "greedy");
    assert_eq!(report.weight, sol.weight(&inst));
}

#[test]
fn expired_deadline_still_yields_feasible_solution() {
    let inst = workload(4, DemandRegime::Mixed);
    let (sol, report) = try_solve_sap(&inst, &Budget::unlimited().with_deadline_ms(0)).unwrap();
    sol.validate(&inst).unwrap();
    assert!(!sol.is_empty());
    assert_eq!(report.winner, "greedy", "everything past the deadline degrades to greedy");
    assert_eq!(report.weight, sol.weight(&inst));
}

#[test]
fn practical_driver_reports_greedy_takeovers() {
    for seed in 0..4 {
        let inst = workload(seed + 20, DemandRegime::Mixed);
        let (sol, report) = try_solve_sap_practical(&inst, &Budget::unlimited()).unwrap();
        sol.validate(&inst).unwrap();
        assert_eq!(report.weight, sol.weight(&inst));
        let greedy =
            storage_alloc::sap_algs::baselines::greedy_sap_best(&inst, &inst.all_ids());
        assert!(sol.weight(&inst) >= greedy.weight(&inst), "seed {seed}");
        if report.winner == "greedy" && report.fallbacks.is_empty() {
            assert_eq!(sol.weight(&inst), greedy.weight(&inst));
        }
    }
}

#[test]
fn starved_lp_routes_small_arm_to_greedy_and_reports_lp_non_optimal() {
    // Regression for the silent-acceptance audit: a pivot-starved LP must
    // never have its partial fractional point rounded. The arm degrades
    // to greedy and the report labels it `lp_non_optimal`.
    let inst = workload(5, DemandRegime::Small { delta_inv: 16 });
    let ids = inst.all_ids();
    let params = storage_alloc::sap_algs::SapParams {
        lp_max_iters: 1,
        ..Default::default()
    };
    let (sol, report) =
        storage_alloc::sap_algs::try_solve(&inst, &ids, &params, &Budget::unlimited()).unwrap();
    sol.validate(&inst).unwrap();
    let small = report.arm("small").expect("small arm ran");
    assert_eq!(small.outcome, ArmOutcome::LpNonOptimal, "{report:?}");
    assert_eq!(small.fallback, Some("greedy"));
    // The arm still contributed a feasible (greedy) solution.
    assert!(small.weight > 0);
    assert_eq!(report.weight, sol.weight(&inst));
}

#[test]
fn infallible_facades_are_untouched_by_default_params() {
    // `solve_sap` / `solve_sap_practical` are now wrappers over the
    // budgeted driver; their contract (feasible, practical ≥ combined)
    // must be unchanged.
    let inst = workload(6, DemandRegime::Mixed);
    let combined = solve_sap(&inst);
    combined.validate(&inst).unwrap();
    let practical = storage_alloc::solve_sap_practical(&inst);
    practical.validate(&inst).unwrap();
    assert!(practical.weight(&inst) >= combined.weight(&inst));
}

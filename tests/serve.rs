//! End-to-end and determinism tests for the `sap serve` batch solve
//! service — both the library engine (`storage_alloc::serve`) and the
//! actual binary driven over pipes.
//!
//! The ISSUE-5 acceptance bar enforced here: batch output is
//! byte-identical across `--workers 1/2/8` and across cold-cache vs
//! warm-cache runs, malformed lines degrade to structured error
//! responses without killing the batch, and the cache counters are
//! visible in `--telemetry=json`.

use std::io::Write;
use std::process::{Command, Stdio};

use storage_alloc::io::{InstanceDto, JsonDto, SolutionDto};
use storage_alloc::json;
use storage_alloc::serve::{ServeAlgo, ServeEngine, ServeOptions};

fn inst_a() -> String {
    r#"{"capacities":[4,6,4],"tasks":[{"lo":0,"hi":2,"demand":2,"weight":10},{"lo":1,"hi":3,"demand":3,"weight":8}]}"#.to_string()
}

fn inst_b() -> String {
    r#"{"capacities":[8,8],"tasks":[{"lo":0,"hi":1,"demand":3,"weight":5},{"lo":1,"hi":2,"demand":8,"weight":9},{"lo":0,"hi":2,"demand":4,"weight":7}]}"#.to_string()
}

/// `inst_a` spelled with different key order and whitespace — the same
/// canonical instance, so it must share a cache entry with `inst_a`.
fn inst_a_respelled() -> String {
    r#"{ "tasks": [ {"weight":10,"demand":2,"hi":2,"lo":0}, {"hi":3,"weight":8,"lo":1,"demand":3} ], "capacities": [4, 6, 4] }"#.to_string()
}

fn mixed_batch() -> Vec<String> {
    vec![
        inst_a(),
        "{definitely not json".to_string(),
        inst_b(),
        inst_a_respelled(),
        r#"{"capacities":[],"tasks":[]}"#.to_string(),
        format!(r#"{{"instance":{},"algo":"combined"}}"#, inst_a()),
        inst_b(),
    ]
}

fn run_engine(opts: ServeOptions, batches: &[Vec<String>]) -> (Vec<String>, ServeEngine) {
    let mut engine = ServeEngine::new(opts);
    let mut out = Vec::new();
    for batch in batches {
        let refs: Vec<&str> = batch.iter().map(String::as_str).collect();
        out.extend(engine.process_batch(&refs));
    }
    (out, engine)
}

#[test]
fn output_is_byte_identical_across_worker_widths() {
    let batches = vec![mixed_batch(), vec![inst_a(), inst_b()]];
    let (base, _) = run_engine(ServeOptions { workers: 1, ..Default::default() }, &batches);
    for workers in [2, 8] {
        let (out, _) = run_engine(ServeOptions { workers, ..Default::default() }, &batches);
        assert_eq!(out, base, "workers={workers} diverged from workers=1");
    }
}

#[test]
fn output_is_byte_identical_cold_vs_warm() {
    let batch = mixed_batch();
    let batches = vec![batch.clone(), batch];
    let (out, engine) = run_engine(ServeOptions::default(), &batches);
    let (cold, warm) = out.split_at(out.len() / 2);
    assert_eq!(cold, warm, "warm-cache replay changed the bytes");
    // Batch 1: the respelled duplicate and the second inst_b ride as
    // followers (2 hits); batch 2: every request that solved ok hits
    // (5 hits). Error responses are never cached, so the invalid
    // instance re-misses on replay: 4 cold misses + 1 warm re-miss.
    assert_eq!(engine.stats.cache_hits, 7);
    assert_eq!(engine.stats.cache_misses, 5);
}

#[test]
fn respelled_instance_shares_a_cache_entry() {
    let (_, engine) =
        run_engine(ServeOptions::default(), &[vec![inst_a()], vec![inst_a_respelled()]]);
    assert_eq!(engine.stats.cache_misses, 1);
    assert_eq!(engine.stats.cache_hits, 1);
}

#[test]
fn algo_override_is_part_of_the_cache_key() {
    let combined = format!(r#"{{"instance":{},"algo":"combined"}}"#, inst_a());
    let practical = format!(r#"{{"instance":{},"algo":"practical"}}"#, inst_a());
    let (_, engine) =
        run_engine(ServeOptions::default(), &[vec![combined.clone()], vec![practical], vec![combined]]);
    // Two distinct keys solved once each; the replay hits.
    assert_eq!(engine.stats.cache_misses, 2);
    assert_eq!(engine.stats.cache_hits, 1);
}

#[test]
fn budgeted_requests_degrade_deterministically() {
    // A starvation budget forces the driver down its fallback chain; the
    // response must still be ok (greedy is budget-free) and identical at
    // any width and on replay.
    let line = format!(r#"{{"instance":{},"work_units":1,"algo":"combined"}}"#, inst_b());
    let batches = vec![vec![line.clone(), line.clone()], vec![line]];
    let (base, engine) = run_engine(ServeOptions { workers: 1, ..Default::default() }, &batches);
    assert!(base[0].starts_with(r#"{"v":1,"status":"ok""#), "{}", base[0]);
    assert!(base[0].contains("budget_exhausted"), "report should record the trip: {}", base[0]);
    assert_eq!(base[0], base[1]);
    assert_eq!(base[0], base[2]);
    assert_eq!(engine.stats.cache_misses, 1);
    let (wide, _) = run_engine(ServeOptions { workers: 8, ..Default::default() }, &batches);
    assert_eq!(base, wide);
}

#[test]
fn cache_evictions_are_counted_and_bounded() {
    // One shard pins the classic single-LRU behaviour; with N shards a
    // 1-entry cache rounds up to 1 entry per shard (capacity is a floor,
    // never silently lowered — see the sharded rounding tests in
    // sap_core::cache).
    let opts = ServeOptions { cache_size: 1, cache_shards: 1, ..Default::default() };
    let (_, engine) = run_engine(opts, &[vec![inst_a()], vec![inst_b()], vec![inst_a()]]);
    // inst_b evicts inst_a, the second inst_a evicts inst_b: 2 evictions,
    // 3 misses, 0 hits.
    assert_eq!(engine.stats.cache_evictions, 2);
    assert_eq!(engine.stats.cache_misses, 3);
    assert_eq!(engine.stats.cache_hits, 0);
}

#[test]
fn disabled_cache_never_hits_but_output_is_unchanged() {
    let batches = vec![vec![inst_a()], vec![inst_a()]];
    let (cached, _) = run_engine(ServeOptions::default(), &batches);
    let (uncached, engine) =
        run_engine(ServeOptions { cache_size: 0, ..Default::default() }, &batches);
    assert_eq!(cached, uncached);
    assert_eq!(engine.stats.cache_hits, 0);
    assert_eq!(engine.stats.cache_misses, 2);
}

// ---------------------------------------------------------------------
// Admission control, per-tenant quotas, and the degradation ladder
// (ISSUE 7). Counter names asserted here double as the `t2` lint
// registration for the serve.admitted / serve.degraded.* /
// serve.shed.* / serve.tenant.* families.
// ---------------------------------------------------------------------

/// A multi-tenant stream that overruns both the global pool and tenant
/// "hog"'s bucket: hog declares three 300-unit solves per batch while
/// "mouse" asks for modest ones.
fn overload_batch() -> Vec<String> {
    let mut lines = Vec::new();
    for _ in 0..3 {
        lines.push(format!(
            r#"{{"instance":{},"work_units":300,"tenant":"hog"}}"#,
            inst_b()
        ));
        lines.push(format!(
            r#"{{"instance":{},"work_units":40,"tenant":"mouse"}}"#,
            inst_a()
        ));
    }
    lines
}

fn overload_opts(workers: usize) -> ServeOptions {
    ServeOptions {
        workers,
        max_inflight_units: Some(700),
        tenant_quota: Some(330),
        cache_size: 0,
        ..Default::default()
    }
}

#[test]
fn overload_stream_degrades_and_sheds_deterministically() {
    let batches = vec![overload_batch(), overload_batch()];
    let (base, engine) = run_engine(overload_opts(1), &batches);
    // The stream is genuinely overloaded: some requests shed, some
    // degrade, and the well-behaved tenant keeps full service.
    let adm = engine.admission_stats();
    assert!(engine.stats.shed > 0, "stream should overrun the quota: {adm:?}");
    assert!(
        adm.degraded_lemma13 + adm.degraded_greedy > 0,
        "ladder should engage before shedding: {adm:?}"
    );
    assert!(adm.admitted > 0, "{adm:?}");
    assert_eq!(
        adm.admitted + adm.shed_quota + adm.shed_capacity,
        engine.stats.requests,
        "every decodable request gets exactly one admission decision: {adm:?}"
    );
    // Byte-identical on a second run and at any worker width.
    let (rerun, _) = run_engine(overload_opts(1), &batches);
    assert_eq!(base, rerun, "overload replay diverged");
    for workers in [2, 8] {
        let (wide, wide_engine) = run_engine(overload_opts(workers), &batches);
        assert_eq!(base, wide, "workers={workers} shifted admission decisions");
        assert_eq!(engine.admission_stats(), wide_engine.admission_stats());
    }
}

#[test]
fn non_shed_overload_responses_stay_validator_feasible() {
    let batches = vec![overload_batch()];
    let (out, _) = run_engine(overload_opts(1), &batches);
    let requests = overload_batch();
    let mut checked = 0;
    for (req_line, resp_line) in requests.iter().zip(&out) {
        if !resp_line.starts_with(r#"{"v":1,"status":"ok""#) {
            assert!(
                resp_line.starts_with(r#"{"v":1,"status":"shed""#),
                "unexpected non-ok line: {resp_line}"
            );
            continue;
        }
        // Re-derive the instance from the request and check the embedded
        // solution against the exact validator — degraded budgets may
        // change the answer but never its feasibility.
        let req = json::parse(req_line).unwrap();
        let inst_dto = InstanceDto::from_json(req.get("instance").unwrap()).unwrap();
        let instance = inst_dto.to_instance().unwrap();
        let resp = json::parse(resp_line).unwrap();
        let sol_dto = SolutionDto::from_json(resp.get("solution").unwrap()).unwrap();
        let solution = sol_dto.to_solution_verified(&instance).unwrap();
        solution.validate(&instance).unwrap();
        checked += 1;
    }
    assert!(checked > 0, "no ok responses to check:\n{out:?}");
}

#[test]
fn shed_response_schema_is_exact() {
    // Quota 30 with burst 60: the third 30-unit request from one tenant
    // in one batch cannot afford even the greedy floor (8 > 0) while
    // the global pool stays plentiful → a quota shed, single line,
    // exact schema.
    let opts = ServeOptions {
        max_inflight_units: Some(1_000_000),
        tenant_quota: Some(30),
        ..Default::default()
    };
    let mut engine = ServeEngine::new(opts);
    let line = format!(r#"{{"instance":{},"work_units":30,"tenant":"t"}}"#, inst_a());
    let lines = vec![line.as_str(), line.as_str(), line.as_str()];
    let out = engine.process_batch(&lines);
    assert_eq!(out[2], r#"{"v":1,"status":"shed","reason":"quota"}"#);
    // A shed is not an error; the summary separates the three kinds.
    assert_eq!(engine.stats.shed, 1);
    assert_eq!(engine.stats.errors, 0);
    assert!(engine.summary_line().contains("1 shed"), "{}", engine.summary_line());
}

#[test]
fn tenant_bucket_refills_restore_service() {
    // Burst 2×60 = 120 drains in batch 1 (two 60-unit solves); batch 2
    // refills +60, so exactly one full-cost solve fits again.
    let opts = ServeOptions {
        max_inflight_units: None,
        tenant_quota: Some(60),
        cache_size: 0,
        ..Default::default()
    };
    let mut engine = ServeEngine::new(opts);
    let line = format!(r#"{{"instance":{},"work_units":60,"tenant":"t"}}"#, inst_a());
    let lines = vec![line.as_str(), line.as_str(), line.as_str()];
    let first = engine.process_batch(&lines);
    assert!(first[0].starts_with(r#"{"v":1,"status":"ok""#));
    assert!(first[1].starts_with(r#"{"v":1,"status":"ok""#));
    // Third request: bucket empty → lemma13 (16) and greedy (8) don't
    // fit either → quota shed.
    assert_eq!(first[2], r#"{"v":1,"status":"shed","reason":"quota"}"#);
    let second = engine.process_batch(&lines);
    assert!(second[0].starts_with(r#"{"v":1,"status":"ok""#), "{}", second[0]);
    let adm = engine.admission_stats();
    assert_eq!(adm.refills, 2);
    assert!(adm.tenant_throttled >= 1, "{adm:?}");
}

#[test]
fn tenantless_requests_bypass_quotas_but_not_capacity() {
    let opts = ServeOptions {
        max_inflight_units: Some(100),
        tenant_quota: Some(10),
        cache_size: 0,
        ..Default::default()
    };
    let mut engine = ServeEngine::new(opts);
    let line = format!(r#"{{"instance":{},"work_units":90}}"#, inst_a());
    let lines = vec![line.as_str(), line.as_str()];
    let out = engine.process_batch(&lines);
    // No tenant: the 10-unit quota never applies, only the pool does.
    assert!(out[0].starts_with(r#"{"v":1,"status":"ok""#), "{}", out[0]);
    // Pool has 10 left: full 90 and lemma13 22 don't fit, greedy 8 does.
    assert!(out[1].starts_with(r#"{"v":1,"status":"ok""#), "{}", out[1]);
    let adm = engine.admission_stats();
    assert_eq!(adm.degraded_greedy, 1);
    assert_eq!(adm.tenant_throttled, 0);
    assert_eq!(engine.admission_stats().shed_quota, 0);
}

#[test]
fn serve_binary_overload_flags_and_admission_counters() {
    // Two batches (blank line = batch boundary): the hog tenant's debt
    // carries into batch 2, where its bucket runs dry and sheds.
    let round = overload_batch().join("\n");
    let input = format!("{round}\n\n{round}\n");
    let (stdout, stderr) = run_serve_binary(
        &[
            "--max-inflight-units",
            "700",
            "--tenant-quota",
            "330",
            "--cache-size",
            "0",
            "--telemetry=json",
        ],
        &input,
    );
    assert!(stdout.contains(r#""status":"shed""#), "no shed line:\n{stdout}");
    for needle in [
        "serve.admitted",
        "serve.degraded.lemma13",
        "serve.degraded.greedy",
        "serve.shed.quota",
        "serve.shed.capacity",
        "serve.tenant.buckets",
        "serve.tenant.refills",
        "serve.tenant.throttled",
    ] {
        assert!(stderr.contains(needle), "stderr missing {needle}:\n{stderr}");
    }
    // Width-invariance through the real binary.
    let (w8, _) = run_serve_binary(
        &[
            "--max-inflight-units",
            "700",
            "--tenant-quota",
            "330",
            "--cache-size",
            "0",
            "--workers",
            "8",
        ],
        &input,
    );
    let (w1, _) = run_serve_binary(
        &[
            "--max-inflight-units",
            "700",
            "--tenant-quota",
            "330",
            "--cache-size",
            "0",
            "--workers",
            "1",
        ],
        &input,
    );
    assert_eq!(w1, w8);
    assert_eq!(stdout, w1);
}

#[test]
fn serve_binary_rejects_zero_admission_flags() {
    for flag in ["--max-inflight-units", "--tenant-quota"] {
        let out = Command::new(env!("CARGO_BIN_EXE_sap"))
            .args(["serve", flag, "0"])
            .stdin(Stdio::null())
            .stderr(Stdio::piped())
            .output()
            .expect("run sap serve");
        assert!(!out.status.success(), "{flag}=0 should be rejected");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(flag), "{stderr}");
    }
}

// ---------------------------------------------------------------------
// Binary end-to-end, over real pipes.
// ---------------------------------------------------------------------

fn run_serve_binary(args: &[&str], input: &str) -> (String, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_sap"))
        .arg("serve")
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn sap serve");
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(input.as_bytes())
        .expect("write stdin");
    let out = child.wait_with_output().expect("sap serve exit");
    assert!(out.status.success(), "sap serve failed: {out:?}");
    (
        String::from_utf8(out.stdout).expect("utf8 stdout"),
        String::from_utf8(out.stderr).expect("utf8 stderr"),
    )
}

#[test]
fn serve_binary_end_to_end_mixed_batch() {
    let input = mixed_batch().join("\n") + "\n";
    let (stdout, stderr) = run_serve_binary(&["--telemetry=json"], &input);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 7, "one response per request line:\n{stdout}");
    for (i, ok) in [true, false, true, true, false, true, true].iter().enumerate() {
        let want = if *ok { r#"{"v":1,"status":"ok""# } else { r#"{"v":1,"status":"error""# };
        assert!(lines[i].starts_with(want), "line {i}: {}", lines[i]);
    }
    // Responses embed solution, report, and telemetry.
    assert!(lines[0].contains("\"solution\":{"), "{}", lines[0]);
    assert!(lines[0].contains("\"report\":{"), "{}", lines[0]);
    assert!(lines[0].contains("\"telemetry\":{"), "{}", lines[0]);
    // The duplicate spelled differently copies the leader byte-for-byte.
    assert_eq!(lines[0], lines[3]);
    // Cache counters are first-class telemetry on stderr.
    for needle in [
        "serve.cache.hits",
        "serve.cache.misses",
        "serve.cache.evictions",
        "serve.cache.entries",
        "serve.requests",
        "serve.batches",
        r#""serve.ok":5"#,
        r#""serve.err":2"#,
    ] {
        assert!(stderr.contains(needle), "stderr missing {needle}:\n{stderr}");
    }
    assert!(stderr.contains("serve: 7 requests (5 ok, 2 err, 0 shed)"), "{stderr}");
}

#[test]
fn serve_binary_stdout_identical_across_widths_and_cache_warmth() {
    // Two copies of the batch in one stream: the second half replays the
    // first against a warm cache. Workers 1 vs 8 and cold vs warm must
    // all be byte-identical.
    let one_round = mixed_batch().join("\n") + "\n";
    let input = format!("{one_round}{one_round}");
    let (w1, _) = run_serve_binary(&["--workers", "1"], &input);
    let (w2, _) = run_serve_binary(&["--workers", "2"], &input);
    let (w8, _) = run_serve_binary(&["--workers", "8"], &input);
    assert_eq!(w1, w2);
    assert_eq!(w1, w8);
    let lines: Vec<&str> = w1.lines().collect();
    assert_eq!(lines.len(), 14);
    let (cold, warm) = lines.split_at(7);
    assert_eq!(cold, warm, "warm replay diverged from cold");
    // Small batch sizes slice the stream differently but cannot change it.
    let (b2, _) = run_serve_binary(&["--batch", "2"], &input);
    assert_eq!(w1, b2);
}

#[test]
fn serve_binary_rejects_bad_flags() {
    let out = Command::new(env!("CARGO_BIN_EXE_sap"))
        .args(["serve", "--algo", "greedy"])
        .stdin(Stdio::null())
        .stderr(Stdio::piped())
        .output()
        .expect("run sap serve");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--algo accepts combined or practical"), "{stderr}");
}

#[test]
fn serve_engine_algo_names_round_trip() {
    assert_eq!(ServeAlgo::from_name("combined"), Some(ServeAlgo::Combined));
    assert_eq!(ServeAlgo::from_name("practical"), Some(ServeAlgo::Practical));
    assert_eq!(ServeAlgo::from_name("exact"), None);
}

// ---------------------------------------------------------------------
// Input-path hardening (ISSUE 10), over real pipes: CRLF and missing
// final newlines frame like LF, oversized lines get the structured
// error, and the sharded cache is output-invariant. The counter names
// asserted here double as the `t2` registration for
// serve.cache.fp_conflict / serve.oversized / serve.shard.*.
// ---------------------------------------------------------------------

#[test]
fn crlf_and_missing_final_newline_frame_like_lf() {
    let lf = format!("{}\n{}\n", inst_a(), inst_b());
    let (base, _) = run_serve_binary(&[], &lf);
    let variants = [
        ("crlf", format!("{}\r\n{}\r\n", inst_a(), inst_b())),
        ("no_final_newline", format!("{}\n{}", inst_a(), inst_b())),
        ("crlf_no_final_newline", format!("{}\r\n{}", inst_a(), inst_b())),
    ];
    for (name, input) in variants {
        let (out, _) = run_serve_binary(&[], &input);
        assert_eq!(out, base, "{name} framing diverged from LF");
    }
}

#[test]
fn oversized_stdin_lines_answer_the_structured_error() {
    // A 10 KiB junk line between two good requests, capped at 256 bytes:
    // the junk is answered in stream order and never buffered whole.
    let junk = "x".repeat(10 * 1024);
    let input = format!("{}\n{junk}\n{}\n", inst_a(), inst_b());
    let (stdout, stderr) =
        run_serve_binary(&["--max-line-bytes", "256", "--telemetry=json"], &input);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 3, "{stdout}");
    assert!(lines[0].starts_with(r#"{"v":1,"status":"ok""#), "{}", lines[0]);
    assert_eq!(lines[1], r#"{"v":1,"status":"error","reason":"oversized"}"#);
    assert!(lines[2].starts_with(r#"{"v":1,"status":"ok""#), "{}", lines[2]);
    assert!(stderr.contains(r#""serve.oversized":1"#), "{stderr}");
    // The good lines are unaffected by the cap.
    let (clean, _) = run_serve_binary(&[], &format!("{}\n{}\n", inst_a(), inst_b()));
    let clean_lines: Vec<&str> = clean.lines().collect();
    assert_eq!(lines[0], clean_lines[0]);
    assert_eq!(lines[2], clean_lines[1]);
}

#[test]
fn serve_binary_rejects_zero_framing_and_shard_flags() {
    for flag in ["--max-line-bytes", "--cache-shards"] {
        let out = Command::new(env!("CARGO_BIN_EXE_sap"))
            .args(["serve", flag, "0"])
            .stdin(Stdio::null())
            .stderr(Stdio::piped())
            .output()
            .expect("run sap serve");
        assert!(!out.status.success(), "{flag}=0 should be rejected");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(flag), "{stderr}");
    }
}

#[test]
fn shard_count_is_output_invariant_through_the_binary() {
    // Duplicate-heavy stream across two batches; shard counts 1/2/8
    // must produce identical stdout AND identical cache totals (the
    // stderr summary carries hits/misses/evictions).
    let round = [inst_a(), inst_b(), inst_a_respelled(), inst_b(), inst_a()].join("\n");
    let input = format!("{round}\n\n{round}\n");
    let mut baseline: Option<(String, String)> = None;
    for shards in ["1", "2", "8"] {
        let (stdout, stderr) = run_serve_binary(&["--cache-shards", shards], &input);
        match &baseline {
            None => baseline = Some((stdout, stderr)),
            Some((base_out, base_err)) => {
                assert_eq!(&stdout, base_out, "shards={shards} changed response bytes");
                assert_eq!(&stderr, base_err, "shards={shards} changed cache totals");
            }
        }
    }
}

#[test]
fn shard_telemetry_counters_are_exported() {
    let input = format!("{}\n{}\n", inst_a(), inst_b());
    let (_, stderr) =
        run_serve_binary(&["--cache-shards", "4", "--telemetry=json"], &input);
    for needle in [
        r#""serve.shard.count":4"#,
        "serve.shard.max_entries",
        r#""serve.cache.fp_conflict":0"#,
        r#""serve.oversized":0"#,
    ] {
        assert!(stderr.contains(needle), "stderr missing {needle}:\n{stderr}");
    }
}

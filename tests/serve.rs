//! End-to-end and determinism tests for the `sap serve` batch solve
//! service — both the library engine (`storage_alloc::serve`) and the
//! actual binary driven over pipes.
//!
//! The ISSUE-5 acceptance bar enforced here: batch output is
//! byte-identical across `--workers 1/2/8` and across cold-cache vs
//! warm-cache runs, malformed lines degrade to structured error
//! responses without killing the batch, and the cache counters are
//! visible in `--telemetry=json`.

use std::io::Write;
use std::process::{Command, Stdio};

use storage_alloc::serve::{ServeAlgo, ServeEngine, ServeOptions};

fn inst_a() -> String {
    r#"{"capacities":[4,6,4],"tasks":[{"lo":0,"hi":2,"demand":2,"weight":10},{"lo":1,"hi":3,"demand":3,"weight":8}]}"#.to_string()
}

fn inst_b() -> String {
    r#"{"capacities":[8,8],"tasks":[{"lo":0,"hi":1,"demand":3,"weight":5},{"lo":1,"hi":2,"demand":8,"weight":9},{"lo":0,"hi":2,"demand":4,"weight":7}]}"#.to_string()
}

/// `inst_a` spelled with different key order and whitespace — the same
/// canonical instance, so it must share a cache entry with `inst_a`.
fn inst_a_respelled() -> String {
    r#"{ "tasks": [ {"weight":10,"demand":2,"hi":2,"lo":0}, {"hi":3,"weight":8,"lo":1,"demand":3} ], "capacities": [4, 6, 4] }"#.to_string()
}

fn mixed_batch() -> Vec<String> {
    vec![
        inst_a(),
        "{definitely not json".to_string(),
        inst_b(),
        inst_a_respelled(),
        r#"{"capacities":[],"tasks":[]}"#.to_string(),
        format!(r#"{{"instance":{},"algo":"combined"}}"#, inst_a()),
        inst_b(),
    ]
}

fn run_engine(opts: ServeOptions, batches: &[Vec<String>]) -> (Vec<String>, ServeEngine) {
    let mut engine = ServeEngine::new(opts);
    let mut out = Vec::new();
    for batch in batches {
        let refs: Vec<&str> = batch.iter().map(String::as_str).collect();
        out.extend(engine.process_batch(&refs));
    }
    (out, engine)
}

#[test]
fn output_is_byte_identical_across_worker_widths() {
    let batches = vec![mixed_batch(), vec![inst_a(), inst_b()]];
    let (base, _) = run_engine(ServeOptions { workers: 1, ..Default::default() }, &batches);
    for workers in [2, 8] {
        let (out, _) = run_engine(ServeOptions { workers, ..Default::default() }, &batches);
        assert_eq!(out, base, "workers={workers} diverged from workers=1");
    }
}

#[test]
fn output_is_byte_identical_cold_vs_warm() {
    let batch = mixed_batch();
    let batches = vec![batch.clone(), batch];
    let (out, engine) = run_engine(ServeOptions::default(), &batches);
    let (cold, warm) = out.split_at(out.len() / 2);
    assert_eq!(cold, warm, "warm-cache replay changed the bytes");
    // Batch 1: the respelled duplicate and the second inst_b ride as
    // followers (2 hits); batch 2: every request that solved ok hits
    // (5 hits). Error responses are never cached, so the invalid
    // instance re-misses on replay: 4 cold misses + 1 warm re-miss.
    assert_eq!(engine.stats.cache_hits, 7);
    assert_eq!(engine.stats.cache_misses, 5);
}

#[test]
fn respelled_instance_shares_a_cache_entry() {
    let (_, engine) =
        run_engine(ServeOptions::default(), &[vec![inst_a()], vec![inst_a_respelled()]]);
    assert_eq!(engine.stats.cache_misses, 1);
    assert_eq!(engine.stats.cache_hits, 1);
}

#[test]
fn algo_override_is_part_of_the_cache_key() {
    let combined = format!(r#"{{"instance":{},"algo":"combined"}}"#, inst_a());
    let practical = format!(r#"{{"instance":{},"algo":"practical"}}"#, inst_a());
    let (_, engine) =
        run_engine(ServeOptions::default(), &[vec![combined.clone()], vec![practical], vec![combined]]);
    // Two distinct keys solved once each; the replay hits.
    assert_eq!(engine.stats.cache_misses, 2);
    assert_eq!(engine.stats.cache_hits, 1);
}

#[test]
fn budgeted_requests_degrade_deterministically() {
    // A starvation budget forces the driver down its fallback chain; the
    // response must still be ok (greedy is budget-free) and identical at
    // any width and on replay.
    let line = format!(r#"{{"instance":{},"work_units":1,"algo":"combined"}}"#, inst_b());
    let batches = vec![vec![line.clone(), line.clone()], vec![line]];
    let (base, engine) = run_engine(ServeOptions { workers: 1, ..Default::default() }, &batches);
    assert!(base[0].starts_with(r#"{"v":1,"status":"ok""#), "{}", base[0]);
    assert!(base[0].contains("budget_exhausted"), "report should record the trip: {}", base[0]);
    assert_eq!(base[0], base[1]);
    assert_eq!(base[0], base[2]);
    assert_eq!(engine.stats.cache_misses, 1);
    let (wide, _) = run_engine(ServeOptions { workers: 8, ..Default::default() }, &batches);
    assert_eq!(base, wide);
}

#[test]
fn cache_evictions_are_counted_and_bounded() {
    let opts = ServeOptions { cache_size: 1, ..Default::default() };
    let (_, engine) = run_engine(opts, &[vec![inst_a()], vec![inst_b()], vec![inst_a()]]);
    // inst_b evicts inst_a, the second inst_a evicts inst_b: 2 evictions,
    // 3 misses, 0 hits.
    assert_eq!(engine.stats.cache_evictions, 2);
    assert_eq!(engine.stats.cache_misses, 3);
    assert_eq!(engine.stats.cache_hits, 0);
}

#[test]
fn disabled_cache_never_hits_but_output_is_unchanged() {
    let batches = vec![vec![inst_a()], vec![inst_a()]];
    let (cached, _) = run_engine(ServeOptions::default(), &batches);
    let (uncached, engine) =
        run_engine(ServeOptions { cache_size: 0, ..Default::default() }, &batches);
    assert_eq!(cached, uncached);
    assert_eq!(engine.stats.cache_hits, 0);
    assert_eq!(engine.stats.cache_misses, 2);
}

// ---------------------------------------------------------------------
// Binary end-to-end, over real pipes.
// ---------------------------------------------------------------------

fn run_serve_binary(args: &[&str], input: &str) -> (String, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_sap"))
        .arg("serve")
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn sap serve");
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(input.as_bytes())
        .expect("write stdin");
    let out = child.wait_with_output().expect("sap serve exit");
    assert!(out.status.success(), "sap serve failed: {out:?}");
    (
        String::from_utf8(out.stdout).expect("utf8 stdout"),
        String::from_utf8(out.stderr).expect("utf8 stderr"),
    )
}

#[test]
fn serve_binary_end_to_end_mixed_batch() {
    let input = mixed_batch().join("\n") + "\n";
    let (stdout, stderr) = run_serve_binary(&["--telemetry=json"], &input);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 7, "one response per request line:\n{stdout}");
    for (i, ok) in [true, false, true, true, false, true, true].iter().enumerate() {
        let want = if *ok { r#"{"v":1,"status":"ok""# } else { r#"{"v":1,"status":"error""# };
        assert!(lines[i].starts_with(want), "line {i}: {}", lines[i]);
    }
    // Responses embed solution, report, and telemetry.
    assert!(lines[0].contains("\"solution\":{"), "{}", lines[0]);
    assert!(lines[0].contains("\"report\":{"), "{}", lines[0]);
    assert!(lines[0].contains("\"telemetry\":{"), "{}", lines[0]);
    // The duplicate spelled differently copies the leader byte-for-byte.
    assert_eq!(lines[0], lines[3]);
    // Cache counters are first-class telemetry on stderr.
    for needle in [
        "serve.cache.hits",
        "serve.cache.misses",
        "serve.cache.evictions",
        "serve.cache.entries",
        "serve.requests",
        "serve.batches",
        r#""serve.ok":5"#,
        r#""serve.err":2"#,
    ] {
        assert!(stderr.contains(needle), "stderr missing {needle}:\n{stderr}");
    }
    assert!(stderr.contains("serve: 7 requests (5 ok, 2 err)"), "{stderr}");
}

#[test]
fn serve_binary_stdout_identical_across_widths_and_cache_warmth() {
    // Two copies of the batch in one stream: the second half replays the
    // first against a warm cache. Workers 1 vs 8 and cold vs warm must
    // all be byte-identical.
    let one_round = mixed_batch().join("\n") + "\n";
    let input = format!("{one_round}{one_round}");
    let (w1, _) = run_serve_binary(&["--workers", "1"], &input);
    let (w2, _) = run_serve_binary(&["--workers", "2"], &input);
    let (w8, _) = run_serve_binary(&["--workers", "8"], &input);
    assert_eq!(w1, w2);
    assert_eq!(w1, w8);
    let lines: Vec<&str> = w1.lines().collect();
    assert_eq!(lines.len(), 14);
    let (cold, warm) = lines.split_at(7);
    assert_eq!(cold, warm, "warm replay diverged from cold");
    // Small batch sizes slice the stream differently but cannot change it.
    let (b2, _) = run_serve_binary(&["--batch", "2"], &input);
    assert_eq!(w1, b2);
}

#[test]
fn serve_binary_rejects_bad_flags() {
    let out = Command::new(env!("CARGO_BIN_EXE_sap"))
        .args(["serve", "--algo", "greedy"])
        .stdin(Stdio::null())
        .stderr(Stdio::piped())
        .output()
        .expect("run sap serve");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--algo accepts combined or practical"), "{stderr}");
}

#[test]
fn serve_engine_algo_names_round_trip() {
    assert_eq!(ServeAlgo::from_name("combined"), Some(ServeAlgo::Combined));
    assert_eq!(ServeAlgo::from_name("practical"), Some(ServeAlgo::Practical));
    assert_eq!(ServeAlgo::from_name("exact"), None);
}

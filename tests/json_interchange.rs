//! Regression and property tests for the consolidated JSON module
//! (`sap_core::json`, re-exported as `storage_alloc::json`) and the
//! verified DTO weight loading in `storage_alloc::io`.
//!
//! The hardening pass this covers:
//!
//! * strict RFC 8259 number grammar (no `1.`, `1.e5`, `01`);
//! * lossless signed integers via `Json::Int(i64)`;
//! * duplicate object keys rejected at parse time;
//! * `weight` in solution documents verified against the instance.
//!
//! The round-trip property tests are driven by the workspace's own
//! seeded `Rng64` (hermetic — no proptest dependency). The generator
//! stays inside the value space where round-tripping is exact: finite
//! non-integral floats (an integral-valued `Json::Float` like `2.0`
//! prints as `2` and deliberately reparses as an integer — documents
//! produced by this workspace never contain one), and `-0.0` is
//! excluded because the parser normalises `-0` to unsigned zero.

use sap_gen::Rng64;
use storage_alloc::io::{InstanceDto, JsonDto, SolutionDto};
use storage_alloc::json::{parse, Json};
use storage_alloc::sap_core::prelude::*;

const ITERS: usize = if cfg!(feature = "proptest") { 2000 } else { 300 };

/// A random string mixing ASCII, escapes, and multi-byte scalars.
fn gen_string(rng: &mut Rng64) -> String {
    const POOL: &[char] = &[
        'a', 'b', 'z', 'A', '0', '9', ' ', '"', '\\', '/', '\n', '\r', '\t', '\u{1}', '\u{1f}',
        'é', 'ÿ', '☃', '\u{1F600}', '中',
    ];
    let len = rng.gen_range(0..12usize);
    (0..len).map(|_| POOL[rng.gen_range(0..POOL.len())]).collect()
}

/// A finite, non-integral, non-negative-zero float (the exactly
/// round-trippable region — see the module doc).
fn gen_float(rng: &mut Rng64) -> f64 {
    let frac = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
    let scale = [1.0, 10.0, 1e3, 1e-3, 1e6][rng.gen_range(0..5usize)];
    let sign = if rng.gen_bool(0.5) { -1.0 } else { 1.0 };
    let x = sign * (frac + 0.5) * scale;
    if x.is_finite() && x.fract() != 0.0 {
        x
    } else {
        0.5
    }
}

fn gen_value(rng: &mut Rng64, depth: usize) -> Json {
    let leaf_only = depth >= 4;
    match rng.gen_range(0..if leaf_only { 6 } else { 8usize }) {
        0 => Json::Null,
        1 => Json::Bool(rng.gen_bool(0.5)),
        2 => Json::UInt(rng.next_u64()),
        3 => {
            // Negative integers live in Int; non-negatives in UInt (the
            // parser's canonical split).
            let v = rng.next_u64() as i64;
            if v < 0 {
                Json::Int(v)
            } else {
                Json::UInt(v as u64)
            }
        }
        4 => Json::Float(gen_float(rng)),
        5 => Json::Str(gen_string(rng)),
        6 => {
            let n = rng.gen_range(0..4usize);
            Json::Array((0..n).map(|_| gen_value(rng, depth + 1)).collect())
        }
        _ => {
            let n = rng.gen_range(0..4usize);
            // Indexed keys keep objects duplicate-free by construction.
            Json::Object(
                (0..n)
                    .map(|i| (format!("k{i}_{}", gen_string(rng)), gen_value(rng, depth + 1)))
                    .collect(),
            )
        }
    }
}

#[test]
fn random_values_round_trip_compact_and_pretty() {
    let mut rng = Rng64::seed_from_u64(0xA11C_E5);
    for iter in 0..ITERS {
        let value = gen_value(&mut rng, 0);
        let compact = value.to_string_compact();
        assert_eq!(parse(&compact).unwrap(), value, "iter {iter}: {compact}");
        let pretty = value.to_string_pretty();
        assert_eq!(parse(&pretty).unwrap(), value, "iter {iter}: {pretty}");
    }
}

#[test]
fn integer_extremes_round_trip_exactly() {
    for x in [0u64, 1, (1 << 53) + 1, u64::MAX - 1, u64::MAX] {
        let parsed = parse(&x.to_string()).unwrap();
        assert_eq!(parsed, Json::UInt(x));
        assert_eq!(parse(&parsed.to_string_compact()).unwrap().as_u64(), Some(x));
    }
    for x in [i64::MIN, i64::MIN + 1, -(1i64 << 53) - 1, -1] {
        let parsed = parse(&x.to_string()).unwrap();
        assert_eq!(parsed, Json::Int(x));
        assert_eq!(parse(&parsed.to_string_compact()).unwrap().as_i64(), Some(x));
    }
}

#[test]
fn non_rfc8259_numbers_are_rejected() {
    for bad in [
        "1.", "-1.", "1.e5", "1.E5", ".5", "-.5", "01", "-01", "00", "007", "01.5", "1e", "1e+",
        "1e-", "1E", "-", "+1", "1..0", "1ee1", "0x10", "1_000",
    ] {
        assert!(parse(bad).is_err(), "{bad:?} must be rejected");
        // Also when embedded in a document.
        let doc = format!("[{bad}]");
        assert!(parse(&doc).is_err(), "{doc:?} must be rejected");
    }
    // The strict grammar still admits everything RFC 8259 does.
    for good in ["0", "-0", "0.5", "0e5", "10", "1.5e-3", "9007199254740993"] {
        assert!(parse(good).is_ok(), "{good:?} must parse");
    }
}

#[test]
fn duplicate_keys_are_rejected_everywhere() {
    for bad in [
        r#"{"a":1,"a":2}"#,
        r#"{"weight":1,"weight":1}"#,
        r#"{"x":{"y":1,"y":2}}"#,
        r#"[{"k":null,"k":null}]"#,
        r#"{"a":1,"b":{"a":1,"c":2,"c":3}}"#,
    ] {
        let err = parse(bad).unwrap_err();
        assert!(err.message.contains("duplicate key"), "{bad:?}: {err}");
    }
    // Equal keys in sibling objects remain fine.
    assert!(parse(r#"{"a":{"k":1},"b":{"k":2}}"#).is_ok());
}

fn sample_instance() -> Instance {
    let net = PathNetwork::new(vec![4, 6, 4]).unwrap();
    let tasks = vec![Task::of(0, 2, 2, 10), Task::of(1, 3, 3, 8)];
    Instance::new(net, tasks).unwrap()
}

#[test]
fn stored_weight_is_cross_checked_on_load() {
    let inst = sample_instance();
    let sol = storage_alloc::solve_sap(&inst);
    let honest = SolutionDto::from_solution(&inst, &sol);
    let honest_json = honest.to_json_string();
    // Honest documents load.
    let loaded = SolutionDto::from_json_str(&honest_json).unwrap();
    assert!(loaded.to_solution_verified(&inst).is_ok());
    // A tampered weight is rejected with a message naming both values.
    let w = honest.weight.unwrap();
    let tampered_json = honest_json.replace(
        &format!("\"weight\":{w}"),
        &format!("\"weight\":{}", w + 99),
    );
    assert_ne!(honest_json, tampered_json, "replacement must have happened");
    let tampered = SolutionDto::from_json_str(&tampered_json).unwrap();
    let err = tampered.to_solution_verified(&inst).unwrap_err();
    assert!(err.contains(&format!("{}", w + 99)), "{err}");
    assert!(err.contains(&w.to_string()), "{err}");
    // Weightless documents still load (tolerated as absent).
    let no_weight = SolutionDto { weight: None, ..loaded };
    assert!(no_weight.to_solution_verified(&inst).is_ok());
}

#[test]
fn instance_documents_with_duplicate_fields_are_rejected() {
    // Before the hardening pass this parsed and silently kept the first
    // capacities array.
    let doc = r#"{"capacities":[4],"capacities":[9999],"tasks":[]}"#;
    assert!(InstanceDto::from_json_str(doc).is_err());
}

#[test]
fn random_instances_round_trip_through_the_dto() {
    let mut rng = Rng64::seed_from_u64(0xD70);
    for _ in 0..20 {
        let edges = rng.gen_range(1..6usize);
        let caps: Vec<u64> = (0..edges).map(|_| rng.gen_range(1..50u64)).collect();
        let net = PathNetwork::new(caps).unwrap();
        let mut tasks = Vec::new();
        for _ in 0..rng.gen_range(0..8usize) {
            let lo = rng.gen_range(0..edges);
            let hi = rng.gen_range(lo + 1..edges + 1);
            let bottleneck = net.capacities()[lo..hi].iter().copied().min().unwrap();
            tasks.push(Task::of(lo, hi, rng.gen_range(1..bottleneck + 1), rng.gen_range(1..99u64)));
        }
        let Ok(inst) = Instance::new(net, tasks) else { continue };
        let dto = InstanceDto::from_instance(&inst);
        let back = InstanceDto::from_json_str(&dto.to_json_string()).unwrap();
        assert_eq!(dto, back);
        assert_eq!(inst, back.to_instance().unwrap());
    }
}

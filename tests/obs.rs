//! Determinism and conservation tests for the observability plane
//! (`sap_core::obs` wired through the serve engine).
//!
//! The ISSUE-8 acceptance bar enforced here: snapshot lines are
//! byte-identical across `--workers 1/2/8`, across cold-cache vs
//! warm-cache runs, and across repeats; the aggregator's per-class work
//! totals exactly equal the fold of the per-request `SolveReport` work
//! meters embedded in the ok responses (work-unit conservation on a
//! mixed ok/error/shed/degraded stream); and `Histogram` survives an
//! `entries()`/`from_entries` round trip on `Rng64`-driven inputs.

use storage_alloc::json;
use storage_alloc::sap_core::{chrome_trace, Histogram, TraceClock};
use storage_alloc::sap_gen::Rng64;
use storage_alloc::serve::{ServeEngine, ServeOptions};

fn inst_small() -> String {
    r#"{"capacities":[4,6,4],"tasks":[{"lo":0,"hi":2,"demand":2,"weight":10},{"lo":1,"hi":3,"demand":3,"weight":8}]}"#.to_string()
}

fn inst_other() -> String {
    r#"{"capacities":[8,8],"tasks":[{"lo":0,"hi":1,"demand":3,"weight":5},{"lo":1,"hi":2,"demand":8,"weight":9},{"lo":0,"hi":2,"demand":4,"weight":7}]}"#.to_string()
}

/// Overloaded two-tenant stream: per batch, three 300-unit "hog"
/// requests, one 40-unit "mouse" request, one malformed line, and one
/// untenanted request. Under a 700-unit pool and a 330-unit quota the
/// hog is degraded and shed while the mouse keeps flowing — every
/// response kind (ok / error / shed) and every admission rung shows up.
fn overload_batches(n: usize) -> Vec<Vec<String>> {
    (0..n)
        .map(|_| {
            vec![
                format!(r#"{{"instance":{},"tenant":"hog","work_units":300}}"#, inst_small()),
                format!(r#"{{"instance":{},"tenant":"hog","work_units":300}}"#, inst_other()),
                format!(r#"{{"instance":{},"tenant":"hog","work_units":300}}"#, inst_small()),
                format!(r#"{{"instance":{},"tenant":"mouse","work_units":40}}"#, inst_other()),
                "{not json".to_string(),
                inst_small(),
            ]
        })
        .collect()
}

fn overload_opts(workers: usize, cache_size: usize) -> ServeOptions {
    ServeOptions {
        workers,
        cache_size,
        max_inflight_units: Some(700),
        tenant_quota: Some(330),
        snapshot_every: 1,
        obs: true,
        ..Default::default()
    }
}

/// Runs the batches and returns (responses, snapshot lines, engine).
fn run_with_snapshots(
    opts: ServeOptions,
    batches: &[Vec<String>],
) -> (Vec<String>, Vec<String>, ServeEngine) {
    let mut engine = ServeEngine::new(opts);
    let mut responses = Vec::new();
    let mut snapshots = Vec::new();
    for batch in batches {
        let refs: Vec<&str> = batch.iter().map(String::as_str).collect();
        responses.extend(engine.process_batch(&refs));
        if let Some(line) = engine.maybe_snapshot() {
            snapshots.push(line);
        }
    }
    (responses, snapshots, engine)
}

#[test]
fn snapshot_stream_is_byte_identical_across_worker_widths() {
    let batches = overload_batches(4);
    let (base_resp, base_snap, _) = run_with_snapshots(overload_opts(1, 64), &batches);
    assert_eq!(base_snap.len(), 4);
    for workers in [2, 8] {
        let (resp, snap, _) = run_with_snapshots(overload_opts(workers, 64), &batches);
        assert_eq!(resp, base_resp, "workers={workers} responses diverged");
        assert_eq!(snap, base_snap, "workers={workers} snapshots diverged");
    }
}

#[test]
fn snapshot_stream_is_byte_identical_across_cache_warmth() {
    let batches = overload_batches(4);
    let (base_resp, base_snap, _) = run_with_snapshots(overload_opts(1, 64), &batches);
    // cache_size 0 disables the cross-batch cache entirely: every
    // request re-solves, yet the snapshot stream must not move.
    let (resp, snap, _) = run_with_snapshots(overload_opts(1, 0), &batches);
    assert_eq!(resp, base_resp, "cold-cache responses diverged");
    assert_eq!(snap, base_snap, "cold-cache snapshots diverged");
}

#[test]
fn snapshot_stream_is_byte_identical_on_repeat_runs() {
    let batches = overload_batches(3);
    let (r1, s1, _) = run_with_snapshots(overload_opts(2, 64), &batches);
    let (r2, s2, _) = run_with_snapshots(overload_opts(2, 64), &batches);
    assert_eq!(r1, r2);
    assert_eq!(s1, s2);
}

#[test]
fn snapshot_lines_are_single_line_v1_records() {
    let batches = overload_batches(2);
    let (_, snaps, _) = run_with_snapshots(overload_opts(1, 64), &batches);
    for (i, line) in snaps.iter().enumerate() {
        assert!(!line.contains('\n'), "snapshot {i} spans lines");
        let v = json::parse(line).expect("snapshot must be valid JSON");
        assert_eq!(v.get("v").and_then(json::Json::as_u64), Some(1));
        assert_eq!(v.get("kind").and_then(json::Json::as_str), Some("snapshot"));
        assert_eq!(v.get("tick").and_then(json::Json::as_u64), Some(i as u64 + 1));
        assert!(v.get("counters").is_some());
        assert!(v.get("delta").is_some());
        assert!(v.get("tenants").is_some());
    }
}

/// Folds the per-class work meters out of an ok response's embedded
/// `report` object, the same way the engine derives its obs counters:
/// each arm's `work` block, plus `driver_work` into the driver class.
fn fold_report_work(response: &str, totals: &mut [u64; 4]) {
    let v = json::parse(response).expect("response must be valid JSON");
    if v.get("status").and_then(json::Json::as_str) != Some("ok") {
        return;
    }
    let report = v.get("report").expect("ok response embeds a report");
    let arms = report.get("arms").and_then(json::Json::as_array).expect("report.arms");
    for arm in arms {
        let work = arm.get("work").expect("arm.work");
        for (i, class) in ["lp_pivot", "dp_row", "pack_sweep", "driver"].iter().enumerate() {
            totals[i] += work.get(class).and_then(json::Json::as_u64).unwrap_or(0);
        }
    }
    totals[3] += report.get("driver_work").and_then(json::Json::as_u64).unwrap_or(0);
}

#[test]
fn aggregator_work_totals_equal_fold_of_response_reports() {
    // Mixed ok/error/shed/degraded stream, with the cache on so some ok
    // responses are replays — conservation must hold through replay
    // amortization too.
    let batches = overload_batches(5);
    let (responses, _, engine) = run_with_snapshots(overload_opts(2, 64), &batches);
    let mut expected = [0u64; 4];
    for r in &responses {
        fold_report_work(r, &mut expected);
    }
    let agg = engine.aggregator().expect("obs enabled");
    let got = [
        agg.counter("obs.work.lp_pivot"),
        agg.counter("obs.work.dp_row"),
        agg.counter("obs.work.pack_sweep"),
        agg.counter("obs.work.driver"),
    ];
    assert_eq!(got, expected, "aggregator work totals must equal the response-report fold");
    assert!(expected.iter().sum::<u64>() > 0, "stream must meter nonzero work");
    // The stream mixes every response class; the conservation claim is
    // only interesting if it actually did.
    assert!(agg.counter("obs.ok") > 0);
    assert!(agg.counter("obs.err") > 0);
    assert!(agg.counter("obs.shed") > 0);
    assert!(agg.counter("obs.rung.full") > 0);
    assert!(
        agg.counter("obs.rung.lemma13") + agg.counter("obs.rung.greedy") > 0,
        "quota pressure must degrade at least one request"
    );
}

#[test]
fn per_tenant_rows_sum_to_the_global_counters() {
    let batches = overload_batches(4);
    let (_, _, engine) = run_with_snapshots(overload_opts(1, 64), &batches);
    let agg = engine.aggregator().expect("obs enabled");
    let mut requests = 0;
    let mut ok = 0;
    let mut shed = 0;
    for (_, t) in agg.tenants() {
        requests += t.requests;
        ok += t.ok;
        shed += t.shed;
    }
    // Untenanted and malformed lines are global-only, so tenant rows
    // are a lower bound on requests and an exact partition of sheds
    // (only tenanted requests can trip the quota here).
    assert!(requests > 0 && requests < agg.counter("obs.requests"));
    assert!(ok <= agg.counter("obs.ok"));
    assert_eq!(shed, agg.counter("obs.shed"));
}

#[test]
fn replayed_responses_contribute_identical_work() {
    // Same batch twice with a warm cache: batch 2 is all replays, yet
    // the snapshot-plane counters must advance by exactly the same
    // deltas as batch 1.
    let batch = vec![inst_small(), inst_other()];
    let opts = ServeOptions { snapshot_every: 1, obs: true, ..Default::default() };
    let (_, snaps, engine) = run_with_snapshots(opts, &[batch.clone(), batch]);
    let agg = engine.aggregator().expect("obs enabled");
    assert_eq!(agg.op("obs.solves"), 2);
    assert_eq!(agg.op("obs.replayed"), 2);
    for class in ["lp_pivot", "dp_row", "pack_sweep", "driver"] {
        let name = format!("obs.work.{class}");
        assert_eq!(agg.counter(&name) % 2, 0, "{name} must double exactly on replay");
    }
    // The two snapshot deltas must be byte-identical (tick aside).
    let d1 = snaps[0].split("\"delta\":").nth(1).unwrap();
    let d2 = snaps[1].split("\"delta\":").nth(1).unwrap();
    assert_eq!(d1, d2, "replay batch produced a different delta than the original");
}

#[test]
fn service_trace_export_is_nonvacuous_and_deterministic() {
    let batches = overload_batches(2);
    let (_, _, engine) = run_with_snapshots(overload_opts(1, 64), &batches);
    let trace = chrome_trace(engine.aggregator().unwrap().profile(), TraceClock::WorkUnits);
    let begins = trace.matches("\"ph\":\"B\"").count();
    let ends = trace.matches("\"ph\":\"E\"").count();
    assert_eq!(begins, ends);
    assert!(begins > 1, "trace must contain child spans, not just the root: {trace}");
    json::parse(&trace).expect("trace must be valid JSON");
    let (_, _, engine2) = run_with_snapshots(overload_opts(8, 64), &batches);
    let trace2 = chrome_trace(engine2.aggregator().unwrap().profile(), TraceClock::WorkUnits);
    assert_eq!(trace, trace2, "trace diverged across worker widths");
}

#[test]
fn histogram_survives_an_entries_round_trip() {
    // Property test under the in-repo deterministic RNG: for arbitrary
    // value streams, (a) every recorded value lands in exactly one
    // bucket, (b) entries()/from_entries round-trips, (c) merge equals
    // recording the concatenated stream. v=0 exercises the dedicated
    // zero bucket.
    let mut rng = Rng64::seed_from_u64(0x0b5e_55ab_1e5e_ed01);
    for _ in 0..50 {
        let n = rng.gen_range(0u64..200);
        let mut h1 = Histogram::new();
        let mut h2 = Histogram::new();
        let mut both = Histogram::new();
        let mut total = 0u64;
        for _ in 0..n {
            // Mix magnitudes: zeros, small counts, and full-width u64s.
            let v = match rng.gen_range(0u64..4) {
                0 => 0,
                1 => rng.gen_range(1u64..100),
                2 => rng.next_u64() >> rng.gen_range(0u64..64) as u32,
                _ => rng.next_u64(),
            };
            if rng.gen_bool(0.5) {
                h1.record(v);
            } else {
                h2.record(v);
            }
            both.record(v);
            total += 1;
        }
        assert_eq!(h1.total() + h2.total(), total);
        let mut merged = h1.clone();
        merged.merge(&h2);
        assert_eq!(merged, both, "merge must equal recording the concatenated stream");
        let entries: Vec<(usize, u64)> = merged.entries().collect();
        let rebuilt = Histogram::from_entries(&entries).expect("round trip");
        assert_eq!(rebuilt, merged, "entries()/from_entries must round-trip");
        // Sparse encoding is canonical: no zero-count buckets.
        assert!(entries.iter().all(|&(_, c)| c > 0));
    }
    // Out-of-range bucket indices are rejected, not wrapped.
    assert!(Histogram::from_entries(&[(65, 1)]).is_none());
}

//! Machine verification of every figure in the paper (experiment index
//! F1–F8 in DESIGN.md). Each test states the figure's formal claim and
//! checks it with the exact solvers.

use storage_alloc::prelude::*;
use storage_alloc::rectpack::{
    self, degeneracy_order, greedy_coloring, intersection_graph,
};
use storage_alloc::sap_algs::{is_sap_feasible, solve_exact_sap, ExactConfig};
use storage_alloc::sap_core::{
    apply_gravity, canonical_heights, clip_to_band, elevation_split, is_delta_small,
    is_elevated, is_grounded, lift, stack,
};
use storage_alloc::sap_gen::{fig1a, fig1b, fig8};

/// Fig. 1(a): UFPP-feasible, SAP-infeasible, with capacities (½, 1, ½)
/// scaled ×4; every proper subset is SAP-feasible (minimal witness).
#[test]
fn fig1a_gap_between_ufpp_and_sap() {
    let inst = fig1a();
    assert_eq!(inst.network().capacities(), &[2, 4, 2]);
    let all = inst.all_ids();
    UfppSolution::new(all.clone()).validate(&inst).unwrap();
    assert!(!is_sap_feasible(&inst, &all), "no SAP solution contains all tasks");
    for skip in &all {
        let sub: Vec<TaskId> = all.iter().copied().filter(|j| j != skip).collect();
        assert!(is_sap_feasible(&inst, &sub), "dropping task {skip} must make it feasible");
    }
}

/// Fig. 1(b) (Chen et al.): the same separation with uniform capacities.
#[test]
fn fig1b_gap_with_uniform_capacities() {
    let inst = fig1b();
    assert!(inst.network().is_uniform());
    let all = inst.all_ids();
    UfppSolution::new(all.clone()).validate(&inst).unwrap();
    assert!(!is_sap_feasible(&inst, &all));
    for skip in &all {
        let sub: Vec<TaskId> = all.iter().copied().filter(|j| j != skip).collect();
        assert!(is_sap_feasible(&inst, &sub), "minimal witness: subset without {skip}");
    }
    // Demands are the figure's {¼, ½} of the capacity.
    for j in &all {
        assert!([1, 2].contains(&inst.demand(*j)));
    }
}

/// Fig. 2: δ-smallness depends on the bottleneck, not a global capacity —
/// the same demand can be small under uniform capacities and large under
/// non-uniform ones.
#[test]
fn fig2_classification_uniform_vs_nonuniform() {
    let delta = Ratio::new(1, 4);
    // Uniform: b(j) = 16 for every task.
    let uni = Instance::new(
        PathNetwork::uniform(4, 16).unwrap(),
        vec![Task::of(0, 4, 4, 1), Task::of(1, 3, 4, 1)],
    )
    .unwrap();
    assert!(is_delta_small(&uni, 0, delta));
    assert!(is_delta_small(&uni, 1, delta));

    // Non-uniform: a valley makes the long task large.
    let non = Instance::new(
        PathNetwork::new(vec![16, 8, 16, 16]).unwrap(),
        vec![Task::of(0, 4, 4, 1), Task::of(2, 4, 4, 1)],
    )
    .unwrap();
    assert!(!is_delta_small(&non, 0, delta), "b = 8 through the valley ⇒ 4 > 8/4");
    assert!(is_delta_small(&non, 1, delta), "b = 16 to the right of the valley");
}

/// Fig. 3 / Observation 2: clipping capacities to the band's upper end is
/// lossless for tasks whose bottlenecks lie in the band.
#[test]
fn fig3_clipping_preserves_optimum() {
    let net = PathNetwork::new(vec![8, 30, 9, 14]).unwrap();
    let tasks = vec![
        Task::of(0, 2, 5, 7),  // b = 8
        Task::of(1, 3, 6, 9),  // b = 9
        Task::of(1, 4, 9, 4),  // b = 9
        Task::of(2, 4, 4, 6),  // b = 9
    ];
    let inst = Instance::new(net, tasks).unwrap();
    let ids = inst.all_ids();
    let (clipped, map) = clip_to_band(&inst, &ids, 8, 16).unwrap();
    assert_eq!(clipped.network().capacities(), &[8, 16, 9, 14]);
    let opt_orig = solve_exact_sap(&inst, &ids, ExactConfig::default()).unwrap();
    let opt_clip = solve_exact_sap(&clipped, &clipped.all_ids(), ExactConfig::default()).unwrap();
    assert_eq!(opt_orig.weight(&inst), opt_clip.weight(&clipped));
    // And the clipped solution lifts back verbatim.
    let lifted = SapSolution::from_pairs(
        opt_clip.placements.iter().map(|p| (map[p.task], p.height)),
    );
    lifted.validate(&inst).unwrap();
}

/// Fig. 4: Strip-Pack's stacking — lifted per-stratum solutions combine
/// into one feasible solution.
#[test]
fn fig4_strip_stacking() {
    // Two strata: b ∈ [4,8) (t=2) and b ∈ [8,16) (t=3).
    let net = PathNetwork::new(vec![4, 8, 8]).unwrap();
    let tasks = vec![
        Task::of(0, 2, 1, 1), // stratum 2
        Task::of(0, 3, 1, 1), // stratum 2
        Task::of(1, 3, 3, 1), // stratum 3
        Task::of(1, 2, 1, 1), // stratum 3
    ];
    let inst = Instance::new(net, tasks).unwrap();
    // Stratum 2 packed into [0,2), lifted to [2,4); stratum 3 into [0,4),
    // lifted to [4,8).
    let s2 = canonical_heights(&inst, &[0, 1]).unwrap();
    assert!(s2.max_makespan(&inst) <= 2);
    let s3 = canonical_heights(&inst, &[2, 3]).unwrap();
    assert!(s3.max_makespan(&inst) <= 4);
    let combined = stack(&[lift(&s2, 2), lift(&s3, 4)]);
    combined.validate(&inst).unwrap();
    assert_eq!(combined.len(), 4);
}

/// Fig. 5 / Observation 11: gravity produces a grounded solution without
/// changing the selected set, and never raises a task.
#[test]
fn fig5_gravity() {
    let net = PathNetwork::uniform(5, 12).unwrap();
    let tasks = vec![
        Task::of(0, 3, 3, 1),
        Task::of(2, 5, 2, 1),
        Task::of(1, 4, 4, 1),
        Task::of(0, 2, 1, 1),
    ];
    let inst = Instance::new(net, tasks).unwrap();
    let floating = SapSolution::from_pairs([(0, 1), (1, 5), (2, 8), (3, 6)]);
    floating.validate(&inst).unwrap();
    assert!(!is_grounded(&inst, &floating));
    let grounded = apply_gravity(&inst, &floating);
    grounded.validate(&inst).unwrap();
    assert!(is_grounded(&inst, &grounded));
    for p in &grounded.placements {
        assert!(p.height <= floating.height_of(p.task).unwrap());
    }
    assert_eq!(grounded.height_of(0), Some(0));
}

/// Fig. 6 / Lemma 14: a feasible solution of (1−2β)-small tasks splits
/// into two β-elevated feasible solutions.
#[test]
fn fig6_elevation_split() {
    // 2^k = 8, β = ¼ ⇒ threshold 2. Tasks are ½-small (d ≤ b/2).
    let net = PathNetwork::uniform(4, 8).unwrap();
    let tasks = vec![
        Task::of(0, 2, 2, 1),
        Task::of(1, 4, 3, 1),
        Task::of(2, 4, 2, 1),
        Task::of(0, 1, 4, 1),
    ];
    let inst = Instance::new(net, tasks).unwrap();
    let sol = canonical_heights(&inst, &[0, 1, 2, 3]).unwrap();
    let split = elevation_split(&inst, &sol, 2);
    split.lifted.validate(&inst).unwrap();
    split.kept.validate(&inst).unwrap();
    assert!(is_elevated(&split.lifted, 2));
    assert!(is_elevated(&split.kept, 2));
    assert_eq!(split.lifted.len() + split.kept.len(), sol.len());
    assert!(!split.lifted.is_empty(), "tasks at height < 2 exist and get lifted");
}

/// Fig. 7: the rectangle reduction — `R(j)` hangs from the bottleneck.
#[test]
fn fig7_rectangle_reduction() {
    let net = PathNetwork::new(vec![10, 6, 4, 6, 10]).unwrap();
    let inst = Instance::new(
        net,
        vec![Task::of(0, 5, 2, 1), Task::of(0, 2, 3, 1)],
    )
    .unwrap();
    let r0 = rectpack::rect_of(&inst, 0);
    assert_eq!((r0.bottom, r0.top), (2, 4), "top = b(j) = 4 (valley), bottom = b−d");
    let r1 = rectpack::rect_of(&inst, 1);
    assert_eq!((r1.bottom, r1.top), (3, 6));
    assert_eq!(r0.height(), inst.demand(0));
}

/// Fig. 8: a ½-large SAP solution whose rectangles form a 5-cycle; the
/// intersection graph is C₅ (2-degenerate, chromatic number 3) — Lemma 17
/// is tight for k = 2.
#[test]
fn fig8_pentagon() {
    let f = fig8();
    let inst = &f.instance;
    // (a) the five tasks form a feasible ½-large SAP solution.
    f.solution.validate(inst).unwrap();
    assert_eq!(f.solution.len(), 5);
    for j in 0..5 {
        assert!(2 * inst.demand(j) > inst.bottleneck(j), "task {j} is ½-large");
    }
    // (b) the rectangle intersection graph is exactly the 5-cycle.
    let ids = inst.all_ids();
    let adj = intersection_graph(inst, &ids);
    for v in 0..5 {
        assert_eq!(adj[v].len(), 2, "vertex {v} must have degree 2");
    }
    // Consecutive in the cycle ⇔ adjacent.
    for i in 0..5 {
        let a = f.cycle[i];
        let b = f.cycle[(i + 1) % 5];
        assert!(adj[a].contains(&b), "cycle edge {a}–{b}");
        let c = f.cycle[(i + 2) % 5];
        assert!(!adj[a].contains(&c), "chord {a}–{c} must be absent");
    }
    // Degeneracy 2 ⇒ greedy uses ≤ 3 colours; an odd cycle needs exactly 3.
    let (order, degeneracy) = degeneracy_order(&adj);
    assert_eq!(degeneracy, 2, "Lemma 17: 2k−2 = 2 for k = 2");
    let colors = greedy_coloring(&adj, &order);
    assert!(rectpack::coloring::is_proper(&adj, &colors));
    assert_eq!(rectpack::coloring::num_colors(&colors), 3, "odd cycle is not 2-colourable");
}

//! Every algorithm against the adversarial generator families — the
//! instances with *known* optimal structure, where wrong answers are
//! unambiguous.

use storage_alloc::prelude::*;
use storage_alloc::sap_algs::{
    self, baselines::greedy_sap, baselines::GreedyOrder, solve_exact_sap, ExactConfig,
};
use storage_alloc::sap_gen::{blocker, comb, generate_trace, knapsack_core, staircase_tower, TraceConfig};

#[test]
fn blocker_family_exact_values() {
    for field in [4u64, 8, 12] {
        let inst = blocker(field);
        // Exact optimum is the field.
        let opt = solve_exact_sap(&inst, &inst.all_ids(), ExactConfig::default())
            .expect("budget")
            .weight(&inst);
        assert_eq!(opt, field);
        // Greedy-by-weight falls into the trap.
        let trap = greedy_sap(&inst, &inst.all_ids(), GreedyOrder::WeightDesc);
        assert_eq!(trap.weight(&inst), field - 1);
        // The combined algorithm escapes it (all tasks are 1-large, the
        // rectangle solver is exact there).
        let combined = storage_alloc::solve_sap(&inst);
        assert_eq!(combined.weight(&inst), field);
    }
}

#[test]
fn knapsack_core_matches_knapsack_solvers() {
    let items = [(6u64, 60u64), (5, 50), (5, 50), (3, 20), (2, 25)];
    let inst = knapsack_core(10, &items);
    let sap_opt = solve_exact_sap(&inst, &inst.all_ids(), ExactConfig::default())
        .expect("budget")
        .weight(&inst);
    let ks_items: Vec<knapsack::Item> =
        items.iter().map(|&(size, weight)| knapsack::Item { size, weight }).collect();
    let ks_opt = knapsack::solve_exact_by_capacity(&ks_items, 10).weight;
    assert_eq!(sap_opt, ks_opt, "single-edge SAP is exactly knapsack");
    let bb = knapsack::solve_exact_branch_and_bound(&ks_items, 10).weight;
    assert_eq!(bb, ks_opt);
}

#[test]
fn staircase_tower_is_fully_schedulable_and_found() {
    let inst = staircase_tower(6);
    let all = inst.all_ids();
    let opt = solve_exact_sap(&inst, &all, ExactConfig::default())
        .expect("budget");
    assert_eq!(opt.len(), inst.num_tasks(), "the tower nests completely");
    // Strip-Pack alone also schedules a fair share: every task is exactly
    // ½-large so the small algorithm gets nothing — use combined.
    let combined = storage_alloc::solve_sap(&inst);
    combined.validate(&inst).unwrap();
    assert!(combined.weight(&inst) * 3 >= opt.weight(&inst), "within the large-task factor");
}

#[test]
fn comb_is_solved_exactly_by_practical() {
    let inst = comb(4);
    let sol = storage_alloc::solve_sap_practical(&inst);
    sol.validate(&inst).unwrap();
    // Total weight = spine (4) + 8 teeth (1 each) = 12; everything packs.
    assert_eq!(sol.weight(&inst), inst.weight_sum());
}

#[test]
fn trace_workloads_run_through_the_full_pipeline() {
    let cfg = TraceConfig { slots: 32, arrivals_per_slot: 3.0, ..Default::default() };
    let inst = generate_trace(&cfg, 9);
    let sol = storage_alloc::solve_sap_practical(&inst);
    sol.validate(&inst).unwrap();
    assert!(!sol.is_empty());
    let stats = storage_alloc::sap_core::solution_stats(&inst, &sol);
    assert!(stats.max_utilization <= 1.0 + 1e-9);
    assert!(stats.weight.0 <= stats.weight.1);
    // Ring sanity on the same shapes.
    let ring = sap_algs::solve_ring(
        &storage_alloc::sap_gen::generate_ring(
            &storage_alloc::sap_gen::RingGenConfig {
                num_edges: 12,
                num_tasks: 60,
                profile: storage_alloc::sap_gen::CapacityProfile::Uniform(1 << 12),
                max_demand: 1 << 10,
                max_weight: 50,
            },
            9,
        ),
        &RingParams::default(),
    );
    assert!(ring.0.len() > 0);
}

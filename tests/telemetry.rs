//! Telemetry determinism and conservation (always-on: no feature flags).
//!
//! * The telemetry JSON export is byte-identical across repeated runs,
//!   and across the metered-sequential vs unmetered-parallel execution
//!   paths — the determinism contract of `sap_core::telemetry`.
//! * Counter conservation: the work attributed to each arm's phase node
//!   equals the arm's budget meter exactly (per class and in total), so
//!   the phase tree never invents or loses work units.
//! * Both exports carry the `"v":1` schema version and round-trip
//!   through the crate's own JSON parser.

use storage_alloc::json;
use storage_alloc::prelude::*;
use storage_alloc::sap_core::{
    Budget, CheckpointClass, Recorder, REPORT_SCHEMA_VERSION, TELEMETRY_SCHEMA_VERSION,
};
use storage_alloc::sap_gen::{generate, CapacityProfile, DemandRegime, GenConfig};

fn workload(seed: u64, regime: DemandRegime) -> Instance {
    generate(
        &GenConfig {
            num_edges: 10,
            num_tasks: 40,
            profile: CapacityProfile::Random { lo: 16, hi: 64 },
            regime,
            max_span: 5,
            max_weight: 30,
        },
        seed,
    )
}

/// Solves `inst` with a fresh recorder attached and returns the
/// telemetry JSON plus the solve report. `work_units` of `u64::MAX`
/// leaves the budget unmetered (parallel arms); any finite value forces
/// the deterministic sequential path.
fn solve_with_recorder(
    inst: &Instance,
    work_units: u64,
) -> (String, storage_alloc::sap_core::SolveReport, Recorder) {
    let rec = Recorder::new();
    let budget = Budget::unlimited()
        .with_work_units(work_units)
        .with_telemetry(rec.handle());
    let (sol, report) = storage_alloc::try_solve_sap(inst, &budget).unwrap();
    sol.validate(inst).unwrap();
    let json = rec.to_json_string();
    (json, report, rec)
}

#[test]
fn telemetry_json_is_byte_identical_across_runs() {
    for seed in 0..4 {
        let inst = workload(seed, DemandRegime::Mixed);
        let (a, rep_a, _) = solve_with_recorder(&inst, u64::MAX);
        let (b, rep_b, _) = solve_with_recorder(&inst, u64::MAX);
        assert_eq!(a, b, "seed {seed}: telemetry JSON must be byte-identical");
        assert_eq!(rep_a.to_json_string(), rep_b.to_json_string(), "seed {seed}");
        assert!(!a.contains("busy_ns"), "timings must be opt-in: {a}");
        assert!(!a.contains('\n'), "export must be single-line");
    }
}

#[test]
fn telemetry_agrees_between_metered_and_parallel_paths() {
    // A huge-but-finite limit flips `Budget::is_metered` on (sequential
    // arms) without ever tripping, so the two execution paths must
    // attribute exactly the same work to exactly the same phases.
    for seed in 0..4 {
        let inst = workload(seed + 10, DemandRegime::Mixed);
        let (parallel, rep_p, _) = solve_with_recorder(&inst, u64::MAX);
        let (metered, rep_m, _) = solve_with_recorder(&inst, 1 << 40);
        assert_eq!(
            parallel, metered,
            "seed {seed}: metered-sequential and parallel runs must export identical telemetry"
        );
        assert_eq!(rep_p.to_json_string(), rep_m.to_json_string(), "seed {seed}");
    }
}

#[test]
fn worker_fanout_exports_byte_identical_telemetry() {
    // The intra-arm fan-out (`SapParams::workers`) splits each metered
    // budget into fixed per-item child meters and merges results in
    // index order, so the solution, the SolveReport JSON, and the
    // telemetry JSON must be byte-identical at 1, 2, and 8 workers.
    for seed in 0..3 {
        let inst = workload(seed + 30, DemandRegime::Mixed);
        let ids = inst.all_ids();
        let mut base: Option<(SapSolution, String, String)> = None;
        for workers in [1usize, 2, 8] {
            let rec = Recorder::new();
            let budget = Budget::unlimited().with_telemetry(rec.handle());
            let params = storage_alloc::sap_algs::SapParams { workers, ..Default::default() };
            let (sol, report) =
                storage_alloc::sap_algs::try_solve(&inst, &ids, &params, &budget).unwrap();
            sol.validate(&inst).unwrap();
            let rep_json = report.to_json_string();
            let tele_json = rec.to_json_string();
            match &base {
                None => base = Some((sol, rep_json, tele_json)),
                Some((sol_1, rep_1, tele_1)) => {
                    assert_eq!(&sol, sol_1, "seed {seed}, workers {workers}: solution differs");
                    assert_eq!(
                        &rep_json, rep_1,
                        "seed {seed}, workers {workers}: report JSON differs"
                    );
                    assert_eq!(
                        &tele_json, tele_1,
                        "seed {seed}, workers {workers}: telemetry JSON differs"
                    );
                }
            }
        }
    }
}

#[test]
fn per_phase_work_reconciles_with_the_budget_meter() {
    for (seed, regime) in [
        (1, DemandRegime::Mixed),
        (2, DemandRegime::Small { delta_inv: 16 }),
        (3, DemandRegime::Large { k: 3 }),
    ] {
        let inst = workload(seed, regime);
        let (_, report, rec) = solve_with_recorder(&inst, u64::MAX);
        let root = rec.handle();
        assert!(report.work_is_attributed(), "{report:?}");
        for arm in ["small", "medium", "large"] {
            let arm_report = report.arm(arm).unwrap_or_else(|| panic!("{arm} arm ran"));
            let phase = root
                .get_child(arm)
                .unwrap_or_else(|| panic!("{arm} phase node exists"));
            assert_eq!(phase.entries(), 1, "{arm}: entered exactly once");
            // Total conservation: phase attribution == budget meter.
            assert_eq!(
                phase.work_total(),
                arm_report.work_consumed,
                "{arm}: telemetry work must equal the arm's budget meter"
            );
            // Per-class conservation against the report's work profile.
            for class in CheckpointClass::ALL {
                assert_eq!(
                    phase.work_units(class),
                    arm_report.work.get(class),
                    "{arm}/{}: per-class split must match",
                    class.as_str()
                );
            }
        }
        // The driver's own orchestration unit lands on the root node.
        assert_eq!(
            root.work_units(CheckpointClass::Driver),
            report.driver_work,
            "root phase carries the driver's own work"
        );
    }
}

#[test]
fn exports_carry_schema_version_and_round_trip() {
    let inst = workload(5, DemandRegime::Mixed);
    let (tele_json, report, _) = solve_with_recorder(&inst, u64::MAX);

    // Telemetry export: leading "v", root span, named arm children.
    let tele = json::parse(&tele_json).unwrap();
    assert_eq!(tele.get("v").and_then(|v| v.as_u64()), Some(TELEMETRY_SCHEMA_VERSION));
    let spans = tele.get("spans").expect("spans object");
    assert_eq!(spans.get("name").and_then(|v| v.as_str()), Some("root"));
    let children = spans.get("children").and_then(|c| c.as_array()).expect("children");
    for arm in ["small", "medium", "large"] {
        assert!(
            children
                .iter()
                .any(|c| c.get("name").and_then(|v| v.as_str()) == Some(arm)),
            "{arm} missing from {tele_json}"
        );
    }

    // Report export: same schema-version convention, and the numeric
    // fields survive the round trip losslessly.
    let rep_json = report.to_json_string();
    assert!(rep_json.starts_with("{\"v\":1,"), "{rep_json}");
    let rep = json::parse(&rep_json).unwrap();
    assert_eq!(rep.get("v").and_then(|v| v.as_u64()), Some(REPORT_SCHEMA_VERSION));
    assert_eq!(rep.get("winner").and_then(|v| v.as_str()), Some(report.winner));
    assert_eq!(rep.get("weight").and_then(|v| v.as_u64()), Some(report.weight));
    assert_eq!(
        rep.get("work_consumed").and_then(|v| v.as_u64()),
        Some(report.work_consumed)
    );
    assert_eq!(
        rep.get("driver_work").and_then(|v| v.as_u64()),
        Some(report.driver_work)
    );
    let arms = rep.get("arms").and_then(|a| a.as_array()).expect("arms array");
    assert_eq!(arms.len(), report.arms.len());
    for (parsed, arm) in arms.iter().zip(&report.arms) {
        assert_eq!(parsed.get("arm").and_then(|v| v.as_str()), Some(arm.arm));
        assert_eq!(
            parsed.get("work_consumed").and_then(|v| v.as_u64()),
            Some(arm.work_consumed)
        );
        let work = parsed.get("work").expect("per-arm work profile");
        for class in CheckpointClass::ALL {
            assert_eq!(
                work.get(class.as_str()).and_then(|v| v.as_u64()),
                Some(arm.work.get(class)),
                "{}/{}", arm.arm, class.as_str()
            );
        }
    }
}

#[test]
fn default_budget_keeps_telemetry_off() {
    // The no-recorder default must not grow a phase tree anywhere: the
    // off handle stays off through children and reports zero everywhere.
    let inst = workload(6, DemandRegime::Mixed);
    let budget = Budget::unlimited();
    assert!(!budget.telemetry().is_enabled());
    let (sol, report) = storage_alloc::try_solve_sap(&inst, &budget).unwrap();
    sol.validate(&inst).unwrap();
    assert!(!budget.telemetry().is_enabled(), "solving must not enable telemetry");
    assert!(budget.telemetry().get_child("small").is_none());
    assert_eq!(budget.telemetry().work_total(), 0);
    // The budget meter itself still works without a recorder.
    assert!(report.work_consumed > 0);
    assert!(report.work_is_attributed(), "{report:?}");
}

#[test]
fn degraded_runs_still_attribute_all_work() {
    // Starved budgets trip arms mid-flight; whatever they consumed
    // before tripping must still appear in both the report and the
    // phase tree (no silently-zeroed arms).
    let inst = workload(7, DemandRegime::Mixed);
    for limit in [0u64, 7, 50, 500, 5_000] {
        let rec = Recorder::new();
        let budget = Budget::unlimited()
            .with_work_units(limit)
            .with_telemetry(rec.handle());
        let (sol, report) = storage_alloc::try_solve_sap(&inst, &budget).unwrap();
        sol.validate(&inst).unwrap();
        assert!(report.work_is_attributed(), "limit {limit}: {report:?}");
        let root = rec.handle();
        for arm_report in &report.arms {
            if arm_report.work_consumed == 0 {
                continue;
            }
            let phase = root
                .get_child(arm_report.arm)
                .unwrap_or_else(|| panic!("limit {limit}: {} phase exists", arm_report.arm));
            assert_eq!(
                phase.work_total(),
                arm_report.work_consumed,
                "limit {limit}: {} conserves tripped work",
                arm_report.arm
            );
        }
    }
}

//! Cross-crate pipeline tests: the paper's algorithms recombine substrate
//! pieces (LP → rounding → DSA → stacking; classes → exact → elevation →
//! residues); these tests exercise the seams between crates on larger
//! inputs than the unit tests use.

use storage_alloc::prelude::*;
use storage_alloc::sap_algs::baselines::greedy_sap_best;
use storage_alloc::sap_core::{classes_k_ell, strata_by_bottleneck};
use storage_alloc::sap_gen::{generate, CapacityProfile, DemandRegime, GenConfig};
use storage_alloc::{dsa, ufpp};

fn workload(seed: u64, regime: DemandRegime) -> Instance {
    let cfg = GenConfig {
        num_edges: 30,
        num_tasks: 200,
        profile: CapacityProfile::RandomWalk { lo: 128, hi: 2048 },
        regime,
        max_span: 12,
        max_weight: 100,
    };
    generate(&cfg, seed)
}

/// Strata and classes tile the task set consistently.
#[test]
fn strata_and_classes_are_consistent() {
    let inst = workload(1, DemandRegime::Mixed);
    let ids = inst.all_ids();
    let strata = strata_by_bottleneck(&inst, &ids);
    let total: usize = strata.iter().map(|(_, v)| v.len()).sum();
    assert_eq!(total, ids.len(), "strata partition the tasks");
    for ell in [1u32, 3, 5] {
        let classes = classes_k_ell(&inst, &ids, ell);
        for (k, members) in &classes {
            for &j in members {
                let b = inst.bottleneck(j);
                assert!((1u64 << k) <= b && b < (1u64 << (k + ell)));
            }
        }
    }
}

/// LP → scale → round → DSA-strip: the full small-task pipeline preserves
/// the bound at every stage on a large instance.
#[test]
fn small_pipeline_stagewise_bounds() {
    let inst = workload(2, DemandRegime::Small { delta_inv: 32 });
    let ids = inst.all_ids();
    // Stage A: LP relaxation solves and bounds the integral optimum.
    let (lp_sol, lp_bound) = ufpp::lp_upper_bound(&inst, &ids);
    assert!(lp_bound > 0.0);
    assert!(lp_sol.x.iter().all(|&x| (-1e-9..=1.0 + 1e-9).contains(&x)));
    // Stage B: rounding to half the minimum capacity.
    let bound = inst.network().min_capacity() / 2;
    let rounded = ufpp::round_scaled_lp(&inst, &ids, bound);
    rounded.solution.validate_packable(&inst, bound).unwrap();
    // Stage C: strip packing the rounded solution.
    let strip = dsa::pack_into_strip(&inst, &rounded.solution.tasks, bound);
    strip.solution.validate_packable(&inst, bound).unwrap();
    strip.solution.validate(&inst).unwrap();
    // Lemma-4 shaped retention: the strip keeps most of the weight.
    let kept = strip.solution.weight(&inst) as f64;
    let input = rounded.solution.weight(&inst) as f64;
    assert!(kept >= 0.8 * input, "strip retention {kept}/{input}");
}

/// The combined algorithm's solution is never beaten by greedy by more
/// than the greedy's own noise — and both validate on big instances.
#[test]
fn combined_vs_greedy_on_large_instances() {
    for (seed, regime) in [
        (3, DemandRegime::Mixed),
        (4, DemandRegime::Small { delta_inv: 16 }),
        (5, DemandRegime::Large { k: 2 }),
    ] {
        let inst = workload(seed, regime);
        let ids = inst.all_ids();
        let combined = storage_alloc::solve_sap(&inst);
        combined.validate(&inst).unwrap();
        let greedy = greedy_sap_best(&inst, &ids);
        greedy.validate(&inst).unwrap();
        assert!(!combined.is_empty());
    }
}

/// UFPP solutions dominate SAP solutions on the same instance
/// (every SAP solution is a UFPP solution; the converse fails).
#[test]
fn sap_weight_never_exceeds_ufpp_optimum_surrogate() {
    let inst = workload(6, DemandRegime::Mixed);
    let ids = inst.all_ids();
    let sap = storage_alloc::solve_sap(&inst);
    let (_, lp) = ufpp::lp_upper_bound(&inst, &ids);
    assert!(sap.weight(&inst) as f64 <= lp + 1e-6);
    // And the projection of the SAP solution is UFPP-feasible.
    sap.to_ufpp().validate(&inst).unwrap();
}

/// Determinism: the whole pipeline is reproducible run-to-run.
#[test]
fn end_to_end_determinism() {
    let inst = workload(7, DemandRegime::Mixed);
    let a = storage_alloc::solve_sap(&inst);
    let b = storage_alloc::solve_sap(&inst);
    assert_eq!(a, b);
}

/// Ring pipeline on a bigger ring.
#[test]
fn ring_pipeline_large() {
    use storage_alloc::sap_gen::{generate_ring, RingGenConfig};
    let cfg = RingGenConfig {
        num_edges: 24,
        num_tasks: 150,
        profile: CapacityProfile::Random { lo: 64, hi: 512 },
        max_demand: 256,
        max_weight: 100,
    };
    let inst = generate_ring(&cfg, 8);
    let (sol, stats) = storage_alloc::sap_algs::solve_ring(&inst, &RingParams::default());
    sol.validate(&inst).unwrap();
    assert!(!sol.is_empty());
    assert_eq!(
        sol.weight(&inst),
        stats.path_weight.max(stats.knapsack_weight)
    );
}

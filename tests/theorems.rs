//! End-to-end verification of each theorem's guarantee on seeded random
//! instances (the full measured curves live in the bench suite / report;
//! these tests assert the *bounds* so regressions fail loudly).

use storage_alloc::prelude::*;
use storage_alloc::sap_algs::{
    self, is_sap_feasible, solve_exact_sap, solve_large, solve_medium, solve_small,
    ExactConfig, MediumParams,
};
use storage_alloc::sap_gen::{generate, CapacityProfile, DemandRegime, GenConfig};
use storage_alloc::ufpp;

fn opt(inst: &Instance) -> u64 {
    solve_exact_sap(inst, &inst.all_ids(), ExactConfig::default())
        .expect("state budget")
        .weight(inst)
}

/// Theorem 1 (measured): Strip-Pack stays within 4+ε of the LP bound on
/// δ-small workloads. The LP bound over-estimates OPT, so this is
/// conservative.
#[test]
fn theorem1_small_ratio_vs_lp() {
    for seed in 0..4 {
        let cfg = GenConfig {
            num_edges: 12,
            num_tasks: 90,
            profile: CapacityProfile::Random { lo: 512, hi: 2047 },
            regime: DemandRegime::Small { delta_inv: 32 },
            max_span: 6,
            max_weight: 60,
        };
        let inst = generate(&cfg, seed);
        let ids = inst.all_ids();
        let sol = solve_small(&inst, &ids, SmallAlgo::LpRounding);
        sol.validate(&inst).unwrap();
        let (_, lp) = ufpp::lp_upper_bound(&inst, &ids);
        let w = sol.weight(&inst) as f64;
        assert!(
            4.5 * w >= lp,
            "seed {seed}: strip-pack {w} vs LP {lp} exceeds 4+ε"
        );
    }
}

/// Theorem 2: the medium algorithm is within (1+ε)·2 of OPT (here
/// ε = q/ℓ = ½ ⇒ bound 3) on δ-large, ½-small instances.
#[test]
fn theorem2_medium_ratio_vs_exact() {
    for seed in 0..4 {
        let cfg = GenConfig {
            num_edges: 5,
            num_tasks: 12,
            profile: CapacityProfile::Random { lo: 64, hi: 255 },
            regime: DemandRegime::Medium { delta_inv: 8 },
            max_span: 4,
            max_weight: 40,
        };
        let inst = generate(&cfg, seed + 100);
        let ids = inst.all_ids();
        let sol = solve_medium(&inst, &ids, MediumParams::default());
        sol.validate(&inst).unwrap();
        let w = sol.weight(&inst);
        let o = opt(&inst);
        assert!(3 * w >= o, "seed {seed}: medium {w} vs opt {o}");
    }
}

/// Theorem 3: the rectangle-packing algorithm is within 2k−1 = 3 of OPT
/// on ½-large instances, and within 1 on 1-demand-equals-bottleneck
/// instances.
#[test]
fn theorem3_large_ratio_vs_exact() {
    for seed in 0..4 {
        let cfg = GenConfig {
            num_edges: 6,
            num_tasks: 12,
            profile: CapacityProfile::Random { lo: 16, hi: 63 },
            regime: DemandRegime::Large { k: 2 },
            max_span: 4,
            max_weight: 40,
        };
        let inst = generate(&cfg, seed + 200);
        let ids = inst.all_ids();
        let sol = solve_large(&inst, &ids).expect("budget");
        sol.validate(&inst).unwrap();
        let w = sol.weight(&inst);
        let o = opt(&inst);
        assert!(3 * w >= o, "seed {seed}: large {w} vs opt {o}");
    }
}

/// Theorem 4: the combined algorithm is within 9+ε of OPT on mixed
/// workloads (measured: usually far better).
#[test]
fn theorem4_combined_ratio_vs_exact() {
    for seed in 0..4 {
        let cfg = GenConfig {
            num_edges: 5,
            num_tasks: 11,
            profile: CapacityProfile::Random { lo: 32, hi: 127 },
            regime: DemandRegime::Mixed,
            max_span: 4,
            max_weight: 40,
        };
        let inst = generate(&cfg, seed + 300);
        let sol = storage_alloc::solve_sap(&inst);
        sol.validate(&inst).unwrap();
        let w = sol.weight(&inst);
        let o = opt(&inst);
        assert!(10 * w >= o, "seed {seed}: combined {w} vs opt {o}");
        assert!(w <= o, "an approximation can never beat the exact optimum");
    }
}

/// Theorem 5: the ring algorithm is within 10+ε of the exact ring optimum.
#[test]
fn theorem5_ring_ratio_vs_exact() {
    use storage_alloc::sap_gen::{generate_ring, RingGenConfig};
    for seed in 0..3 {
        let cfg = RingGenConfig {
            num_edges: 6,
            num_tasks: 9,
            profile: CapacityProfile::Random { lo: 8, hi: 40 },
            max_demand: 40,
            max_weight: 30,
        };
        let inst = generate_ring(&cfg, seed + 400);
        let (sol, _) = sap_algs::solve_ring(&inst, &RingParams::default());
        sol.validate(&inst).unwrap();
        let exact = sap_algs::ring::solve_ring_exact(&inst);
        let w = sol.weight(&inst);
        let o = exact.weight(&inst);
        assert!(11 * w >= o, "seed {seed}: ring {w} vs opt {o}");
        assert!(w <= o);
    }
}

/// Lemma 3: the best-of-split bound — on any instance the combined
/// algorithm's weight is at least each regime algorithm's weight run on
/// its own regime subset.
#[test]
fn lemma3_best_of_split_dominates_components() {
    let cfg = GenConfig {
        num_edges: 8,
        num_tasks: 40,
        profile: CapacityProfile::RandomWalk { lo: 64, hi: 512 },
        regime: DemandRegime::Mixed,
        max_span: 5,
        max_weight: 50,
    };
    let inst = generate(&cfg, 500);
    let (sol, stats) = sap_algs::combined::solve_with_stats(
        &inst,
        &inst.all_ids(),
        &SapParams::default(),
    );
    let w = sol.weight(&inst);
    assert_eq!(w, stats.small_weight.max(stats.medium_weight).max(stats.large_weight));
}

/// The exact solver agrees with the UFPP exact solver on instances where
/// SAP = UFPP (single edge ⇒ heights are free: any load-feasible set
/// stacks).
#[test]
fn exact_sap_equals_knapsack_on_single_edge() {
    let net = PathNetwork::new(vec![25]).unwrap();
    let tasks: Vec<Task> = (0..10)
        .map(|i| Task::of(0, 1, 2 + (i % 5), 3 + (i * 7) % 11))
        .collect();
    let inst = Instance::new(net, tasks).unwrap();
    let sap = opt(&inst);
    let ufpp_sol = ufpp::solve_exact(&inst, &inst.all_ids());
    assert_eq!(sap, ufpp_sol.weight(&inst));
}

/// Feasibility of the empty and full extremes.
#[test]
fn degenerate_inputs() {
    let net = PathNetwork::uniform(3, 100).unwrap();
    let inst = Instance::new(net, vec![Task::of(0, 3, 1, 1)]).unwrap();
    assert!(is_sap_feasible(&inst, &[]));
    assert!(is_sap_feasible(&inst, &[0]));
    let sol = storage_alloc::solve_sap(&inst);
    assert_eq!(sol.len(), 1);
}

//! Failure injection: corrupt solutions in every possible way and verify
//! the validators reject each corruption with the right error. The
//! validators are the trust anchor of the whole reproduction (every
//! algorithm's output passes through them), so they get adversarial
//! treatment of their own.

use storage_alloc::prelude::*;
use storage_alloc::sap_core::SapError;
use storage_alloc::sap_gen::{generate, CapacityProfile, DemandRegime, GenConfig};

fn workload(seed: u64) -> Instance {
    generate(
        &GenConfig {
            num_edges: 10,
            num_tasks: 40,
            profile: CapacityProfile::Random { lo: 16, hi: 64 },
            regime: DemandRegime::Mixed,
            max_span: 5,
            max_weight: 30,
        },
        seed,
    )
}

fn solved(seed: u64) -> (Instance, SapSolution) {
    let inst = workload(seed);
    let sol = storage_alloc::solve_sap_practical(&inst);
    assert!(sol.len() >= 2, "need at least two placements to corrupt");
    (inst, sol)
}

#[test]
fn raising_a_task_above_its_bottleneck_is_caught() {
    let (inst, sol) = solved(1);
    for i in 0..sol.len() {
        let mut bad = sol.clone();
        let task = bad.placements[i].task;
        bad.placements[i].height = inst.bottleneck(task) - inst.demand(task) + 1;
        let err = bad.validate(&inst).unwrap_err();
        assert!(
            matches!(
                err,
                SapError::PlacementAboveCapacity { .. } | SapError::OverlappingPlacements { .. }
            ),
            "corruption {i} must be rejected, got {err:?}"
        );
    }
}

#[test]
fn forcing_two_overlapping_tasks_to_equal_heights_is_caught() {
    let (inst, sol) = solved(2);
    // Find two placements with overlapping spans and force a collision.
    let mut found = false;
    'outer: for i in 0..sol.len() {
        for j in i + 1..sol.len() {
            let (a, b) = (sol.placements[i], sol.placements[j]);
            if inst.span(a.task).overlaps(inst.span(b.task)) {
                let mut bad = sol.clone();
                bad.placements[j].height = bad.placements[i].height;
                assert!(bad.validate(&inst).is_err());
                found = true;
                break 'outer;
            }
        }
    }
    assert!(found, "workload should contain overlapping selections");
}

#[test]
fn duplicate_selection_is_caught() {
    let (inst, sol) = solved(3);
    let mut bad = sol.clone();
    let dup = bad.placements[0];
    bad.placements.push(dup);
    assert_eq!(
        bad.validate(&inst).unwrap_err(),
        SapError::DuplicateTask { task: dup.task }
    );
}

#[test]
fn unknown_task_id_is_caught() {
    let (inst, sol) = solved(4);
    let mut bad = sol.clone();
    bad.placements[0].task = inst.num_tasks() + 7;
    assert_eq!(
        bad.validate(&inst).unwrap_err(),
        SapError::UnknownTask { task: inst.num_tasks() + 7 }
    );
}

#[test]
fn height_overflow_is_caught_not_wrapped() {
    let (inst, sol) = solved(5);
    let mut bad = sol.clone();
    bad.placements[0].height = u64::MAX - 1;
    let err = bad.validate(&inst).unwrap_err();
    assert!(matches!(err, SapError::Overflow | SapError::PlacementAboveCapacity { .. }));
}

#[test]
fn ufpp_overload_is_caught_with_edge_report() {
    let inst = workload(6);
    // Select everything — guaranteed to overload some edge.
    let all = UfppSolution::new(inst.all_ids());
    match all.validate(&inst) {
        Err(SapError::LoadExceedsCapacity { edge, load, capacity }) => {
            assert!(load > capacity);
            assert_eq!(inst.loads(&all.tasks)[edge], load);
        }
        other => panic!("expected overload, got {other:?}"),
    }
}

#[test]
fn ring_validator_rejects_wrong_arc() {
    use storage_alloc::sap_core::ring::{
        ArcChoice, RingInstance, RingNetwork, RingPlacement, RingSolution, RingTask,
    };
    let net = RingNetwork::new(vec![8, 2, 8, 8]).unwrap();
    let inst = RingInstance::new(net, vec![RingTask::of(0, 2, 5, 1)]).unwrap();
    // Clockwise (edges 0,1) crosses the capacity-2 edge: must fail.
    let cw = RingSolution::new(vec![RingPlacement {
        task: 0,
        arc: ArcChoice::Clockwise,
        height: 0,
    }]);
    assert!(cw.validate(&inst).is_err());
    // Counter-clockwise (edges 2,3) fits.
    let ccw = RingSolution::new(vec![RingPlacement {
        task: 0,
        arc: ArcChoice::CounterClockwise,
        height: 0,
    }]);
    ccw.validate(&inst).unwrap();
}

/// Report integrity under injected faults: an arm that was corrupted
/// (panicked or starved) must never be reported as `Completed`, and the
/// report's winner/weight must always describe the returned solution.
/// The complementary sweep lives in `tests/chaos.rs`; these cases pin the
/// *absence of misreporting* specifically.
#[cfg(feature = "fault-injection")]
mod report_integrity {
    use super::workload;
    use storage_alloc::sap_algs::try_solve;
    use storage_alloc::sap_core::{ArmOutcome, Budget, CheckpointClass, FaultPlan};
    use storage_alloc::prelude::*;

    #[test]
    fn a_panicked_arm_is_never_reported_completed() {
        let inst = workload(31);
        for idx in 0..3usize {
            let plan = FaultPlan { panic_worker: Some(idx), ..Default::default() };
            let budget = Budget::unlimited().with_fault_plan(plan);
            let (sol, report) =
                try_solve(&inst, &inst.all_ids(), &SapParams::default(), &budget).unwrap();
            sol.validate(&inst).unwrap();
            let arm = report.arm(["small", "medium", "large"][idx]).unwrap();
            assert_eq!(arm.outcome, ArmOutcome::Panicked, "worker {idx}: {report:?}");
            assert_eq!(arm.weight, 0, "a dead arm cannot carry weight");
            assert!(!report.is_clean());
        }
    }

    #[test]
    fn a_starved_arm_is_never_reported_completed() {
        let inst = workload(32);
        // Exhaust on the first DP row: the medium arm's sub-solvers trip.
        let plan = FaultPlan {
            exhaust_at: Some((Some(CheckpointClass::DpRow), 1)),
            ..Default::default()
        };
        let budget = Budget::unlimited().with_fault_plan(plan);
        let (sol, report) =
            try_solve(&inst, &inst.all_ids(), &SapParams::default(), &budget).unwrap();
        sol.validate(&inst).unwrap();
        let medium = report.arm("medium").unwrap();
        assert_eq!(medium.outcome, ArmOutcome::BudgetExhausted, "{report:?}");
        assert_eq!(medium.weight, 0);
        assert_ne!(report.winner, "medium");
        assert_eq!(report.weight, sol.weight(&inst));
    }

    #[test]
    fn a_panicked_arm_still_has_its_work_attributed() {
        // Regression for the child-budget accounting audit: whatever a
        // worker consumed before its injected panic must appear in its
        // ArmReport (and in the phase tree), never be silently dropped.
        use storage_alloc::sap_core::Recorder;
        let inst = workload(34);
        for idx in 0..3usize {
            let plan = FaultPlan { panic_worker: Some(idx), ..Default::default() };
            let rec = Recorder::new();
            let budget = Budget::unlimited()
                .with_fault_plan(plan)
                .with_telemetry(rec.handle());
            let (sol, report) =
                try_solve(&inst, &inst.all_ids(), &SapParams::default(), &budget).unwrap();
            sol.validate(&inst).unwrap();
            assert!(report.work_is_attributed(), "worker {idx}: {report:?}");
            let arm = ["small", "medium", "large"][idx];
            // The phase was entered before the fault hook fired, so the
            // tree records the attempt even though the arm died at once.
            let phase = rec.handle().get_child(arm).expect("phase node exists");
            assert_eq!(phase.entries(), 1, "worker {idx}");
            assert_eq!(
                phase.work_total(),
                report.arm(arm).unwrap().work_consumed,
                "worker {idx}: telemetry conserves the dead arm's work"
            );
        }
    }

    #[test]
    fn a_starved_arm_still_reports_the_work_it_burned() {
        let inst = workload(35);
        // Let a few DP rows through before tripping, so the starved arm
        // has non-zero consumption to account for.
        let plan = FaultPlan {
            exhaust_at: Some((Some(CheckpointClass::DpRow), 3)),
            ..Default::default()
        };
        let budget = Budget::unlimited().with_fault_plan(plan);
        let (sol, report) =
            try_solve(&inst, &inst.all_ids(), &SapParams::default(), &budget).unwrap();
        sol.validate(&inst).unwrap();
        assert!(report.work_is_attributed(), "{report:?}");
        let medium = report.arm("medium").unwrap();
        assert_eq!(medium.outcome, ArmOutcome::BudgetExhausted, "{report:?}");
        assert!(
            medium.work_consumed > 0,
            "the starved arm burned DP rows before tripping: {report:?}"
        );
        assert_eq!(
            medium.work.total(),
            medium.work_consumed,
            "per-class split covers everything: {report:?}"
        );
    }

    #[test]
    fn an_lp_starved_arm_is_labelled_not_silently_rounded() {
        use storage_alloc::sap_gen::{generate, CapacityProfile, DemandRegime, GenConfig};
        let inst = generate(
            &GenConfig {
                num_edges: 8,
                num_tasks: 30,
                profile: CapacityProfile::Random { lo: 32, hi: 128 },
                regime: DemandRegime::Small { delta_inv: 16 },
                max_span: 4,
                max_weight: 30,
            },
            33,
        );
        let plan = FaultPlan { fail_lp_solve: Some(1), ..Default::default() };
        let budget = Budget::unlimited().with_fault_plan(plan);
        let (sol, report) =
            try_solve(&inst, &inst.all_ids(), &SapParams::default(), &budget).unwrap();
        sol.validate(&inst).unwrap();
        let small = report.arm("small").unwrap();
        assert_eq!(small.outcome, ArmOutcome::LpNonOptimal, "{report:?}");
        assert_eq!(small.fallback, Some("greedy"));
        assert_ne!(small.outcome, ArmOutcome::Completed);
    }
}

#[test]
fn validators_agree_with_dto_round_trip() {
    use storage_alloc::io::{InstanceDto, JsonDto, SolutionDto};
    let (inst, sol) = solved(7);
    let json_inst = InstanceDto::from_instance(&inst).to_json_string();
    let json_sol = SolutionDto::from_solution(&inst, &sol).to_json_string();
    let inst2 = InstanceDto::from_json_str(&json_inst)
        .unwrap()
        .to_instance()
        .unwrap();
    let sol2 = SolutionDto::from_json_str(&json_sol).unwrap().to_solution();
    sol2.validate(&inst2).unwrap();
    assert_eq!(sol.weight(&inst), sol2.weight(&inst2));
}
